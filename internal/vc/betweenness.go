package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Betweenness centrality on unweighted graphs (Table 1 row 15): the
// BSP formulation of Brandes' algorithm (Redekopp et al.): per source,
// a forward BFS wave computes levels and shortest-path counts σ (and,
// as the wave passes, each vertex counts its successors), then a
// backward accumulation wave propagates the dependencies δ from the
// BFS leaves toward the source: a vertex broadcasts its (σ, δ) as soon
// as all of its successors have contributed. Work is O(m+n) per source
// — matching Brandes — but the two waves take Θ(δ) supersteps each,
// which is what disqualifies the algorithm from BPPA.

// BetweennessResult holds centrality scores (Brandes' convention, no
// endpoints, each unordered pair contributing from both directions on
// undirected graphs — identical to the internal/seq baseline).
type BetweennessResult struct {
	BC    []float64
	Stats *bsp.Stats
}

type bcValue struct {
	dist    int32
	sigma   float64
	delta   float64
	pending int32 // successors that have not yet contributed
	done    bool  // backward broadcast sent
}

type bcMsg struct {
	Level int32
	Sigma float64
	Delta float64
}

const (
	bcForward = iota
	bcBackward
)

type bcProgram struct {
	src VertexID
	// master state
	mode int
}

func (p *bcProgram) Init(g *graph.Graph, id VertexID) bcValue {
	if id == p.src {
		return bcValue{dist: 0, sigma: 1}
	}
	return bcValue{dist: -1}
}

func (p *bcProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	if p.mode == bcForward && mc.Superstep() > 0 && mc.ActiveFrontier() == 0 {
		// No vertex is queued to compute: the wave has died out (every
		// settler broadcasts, so an empty worklist means nothing
		// settled last superstep). Switch to backward accumulation and
		// wake everyone once so the BFS leaves (pending == 0) can
		// fire; everything after that is message-driven, and the
		// engine stops when the deltas have drained into the source.
		p.mode = bcBackward
		mc.ActivateAll()
	}
	mc.SetGlobal("mode", p.mode)
}

func (p *bcProgram) Compute(ctx *pregel.Context[bcValue, bcMsg], msgs []bcMsg) {
	v := ctx.Value()
	defer ctx.VoteToHalt()
	if ctx.Global("mode").(int) == bcForward {
		s := int32(ctx.Superstep())
		if s == 0 {
			if ctx.ID() == p.src {
				ctx.SendToNeighbors(bcMsg{Level: 0, Sigma: 1})
			}
			return
		}
		if v.dist == -1 {
			var sigma float64
			for _, m := range msgs {
				if m.Level == s-1 {
					sigma += m.Sigma
				}
			}
			if sigma == 0 {
				return
			}
			v.dist = s
			v.sigma = sigma
			ctx.SendToNeighbors(bcMsg{Level: s, Sigma: sigma})
			return
		}
		// Already settled: broadcasts from the next level reveal this
		// vertex's successor count.
		for _, m := range msgs {
			if m.Level == v.dist+1 {
				v.pending++
			}
		}
		return
	}
	// Backward: accept contributions from successors; fire once all of
	// them (possibly zero, for BFS leaves) have reported.
	if v.dist == -1 || v.done {
		return
	}
	for _, m := range msgs {
		if m.Level == v.dist+1 {
			v.delta += v.sigma / m.Sigma * (1 + m.Delta)
			v.pending--
		}
	}
	if v.pending == 0 {
		v.done = true
		if v.dist > 0 {
			ctx.SendToNeighbors(bcMsg{Level: v.dist, Sigma: v.sigma, Delta: v.delta})
		}
	}
}

func (p *bcProgram) StateUnits(v *bcValue) int64 { return 4 }

// --- Superstep sharing (Redekopp et al. [18], named in the paper's §1) ---
//
// Running the K sources one engine run at a time costs Σ_s 2δ_s
// supersteps and pays the per-superstep synchronization K times over.
// Superstep sharing batches all K computations into ONE run: messages
// and per-vertex state are tagged by source index, so every superstep
// advances all K waves at once and the run takes max_s 2δ_s supersteps.

type bcBatchValue struct {
	dist    []int32
	sigma   []float64
	delta   []float64
	pending []int32
	done    []bool
}

type bcBatchMsg struct {
	Src   int16
	Level int32
	Sigma float64
	Delta float64
}

type bcBatchProgram struct {
	sources []VertexID
	mode    int
}

func (p *bcBatchProgram) Init(g *graph.Graph, id VertexID) bcBatchValue {
	k := len(p.sources)
	v := bcBatchValue{
		dist:    make([]int32, k),
		sigma:   make([]float64, k),
		delta:   make([]float64, k),
		pending: make([]int32, k),
		done:    make([]bool, k),
	}
	for i, s := range p.sources {
		if s == id {
			v.dist[i] = 0
			v.sigma[i] = 1
		} else {
			v.dist[i] = -1
		}
	}
	return v
}

func (p *bcBatchProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	// Same worklist-driven switch as bcProgram: an empty frontier means
	// every one of the K shared waves died out last superstep.
	if p.mode == bcForward && mc.Superstep() > 0 && mc.ActiveFrontier() == 0 {
		p.mode = bcBackward
		mc.ActivateAll()
	}
	mc.SetGlobal("mode", p.mode)
}

func (p *bcBatchProgram) Compute(ctx *pregel.Context[bcBatchValue, bcBatchMsg], msgs []bcBatchMsg) {
	v := ctx.Value()
	defer ctx.VoteToHalt()
	if ctx.Global("mode").(int) == bcForward {
		s := int32(ctx.Superstep())
		if s == 0 {
			for i := range p.sources {
				if v.dist[i] == 0 {
					ctx.SendToNeighbors(bcBatchMsg{Src: int16(i), Level: 0, Sigma: 1})
				}
			}
			return
		}
		var sigma []float64
		for _, m := range msgs {
			if v.dist[m.Src] == -1 && m.Level == s-1 {
				if sigma == nil {
					sigma = make([]float64, len(p.sources))
				}
				sigma[m.Src] += m.Sigma
			} else if v.dist[m.Src] != -1 && m.Level == v.dist[m.Src]+1 {
				v.pending[m.Src]++
			}
		}
		for i := range sigma {
			if sigma[i] > 0 {
				v.dist[i] = s
				v.sigma[i] = sigma[i]
				ctx.SendToNeighbors(bcBatchMsg{Src: int16(i), Level: s, Sigma: sigma[i]})
			}
		}
		return
	}
	for _, m := range msgs {
		if v.dist[m.Src] != -1 && m.Level == v.dist[m.Src]+1 {
			v.delta[m.Src] += v.sigma[m.Src] / m.Sigma * (1 + m.Delta)
			v.pending[m.Src]--
		}
	}
	for i := range p.sources {
		if v.dist[i] != -1 && !v.done[i] && v.pending[i] == 0 {
			v.done[i] = true
			if v.dist[i] > 0 {
				ctx.SendToNeighbors(bcBatchMsg{Src: int16(i), Level: v.dist[i], Sigma: v.sigma[i], Delta: v.delta[i]})
			}
		}
	}
}

func (p *bcBatchProgram) StateUnits(v *bcBatchValue) int64 { return int64(4 * len(v.dist)) }

// BetweennessShared computes the same centrality as Betweenness but
// with superstep sharing: all sources advance in one engine run,
// cutting the superstep count from Σ_s 2δ_s to max_s 2δ_s at the price
// of K-fold per-vertex state (the classic latency/memory trade).
func BetweennessShared(g *graph.Graph, sources []VertexID, cfg Config) (*BetweennessResult, error) {
	n := g.N()
	if sources == nil {
		sources = make([]VertexID, n)
		for i := range sources {
			sources[i] = VertexID(i)
		}
	}
	if len(sources) > 1<<15 {
		return nil, errTooManySources
	}
	prog := &bcBatchProgram{sources: sources}
	eng := pregel.NewEngine[bcBatchValue, bcBatchMsg](g, prog, engineCfg[bcBatchMsg](cfg))
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &BetweennessResult{BC: make([]float64, n), Stats: res.Stats}
	for v, val := range res.Values {
		for i, s := range sources {
			if VertexID(v) != s && val.dist[i] != -1 {
				out.BC[v] += val.delta[i]
			}
		}
	}
	return out, nil
}

// Betweenness accumulates betweenness centrality from the given
// sources (nil = all vertices), one forward+backward engine run per
// source, exactly mirroring the per-source structure of Brandes.
func Betweenness(g *graph.Graph, sources []VertexID, cfg Config) (*BetweennessResult, error) {
	n := g.N()
	if sources == nil {
		sources = make([]VertexID, n)
		for i := range sources {
			sources[i] = VertexID(i)
		}
	}
	out := &BetweennessResult{BC: make([]float64, n)}
	var parts []*bsp.Stats
	for _, s := range sources {
		prog := &bcProgram{src: s}
		eng := pregel.NewEngine[bcValue, bcMsg](g, prog, engineCfg[bcMsg](cfg))
		res, err := eng.Run()
		if err != nil {
			return nil, err
		}
		for v, val := range res.Values {
			if VertexID(v) != s && val.dist != -1 {
				out.BC[v] += val.delta
			}
		}
		parts = append(parts, res.Stats)
	}
	out.Stats = MergeStats(parts...)
	return out, nil
}
