package vc

import (
	"math"
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

func TestHITSMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := graph.RandomDirected(150, 700, seed)
		res, err := HITS(g, 20, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		var ops seq.Ops
		hub, auth := seq.HITS(g, 20, &ops)
		for v := range hub {
			if math.Abs(res.Hub[v]-hub[v]) > 1e-9 || math.Abs(res.Auth[v]-auth[v]) > 1e-9 {
				t.Fatalf("seed %d vertex %d: hub %v/%v auth %v/%v",
					seed, v, res.Hub[v], hub[v], res.Auth[v], auth[v])
			}
		}
	}
}

func TestHITSHubAuthStructure(t *testing.T) {
	// A directory page pointing at many content pages: the pointer is
	// the top hub, the pointees the top authorities.
	g := graph.New(6, true)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, graph.VertexID(i)) // 0 points to 1..4
		g.AddEdge(5, graph.VertexID(i)) // 5 points to them too (weaker? same)
	}
	g.AddEdge(0, 5)
	g.EnsureIn()
	res, err := HITS(g, 30, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 5; v++ {
		if res.Hub[v] > res.Hub[0] {
			t.Fatalf("content page %d out-hubs the directory: %v vs %v", v, res.Hub[v], res.Hub[0])
		}
		if res.Auth[v] <= res.Auth[0] {
			t.Fatalf("content page %d not more authoritative than the directory", v)
		}
	}
}

func TestHITSUnitNorm(t *testing.T) {
	g := graph.RandomDirected(80, 300, 5)
	res, err := HITS(g, 15, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var hs, as float64
	for v := range res.Hub {
		hs += res.Hub[v] * res.Hub[v]
		as += res.Auth[v] * res.Auth[v]
	}
	if math.Abs(hs-1) > 1e-9 || math.Abs(as-1) > 1e-9 {
		t.Fatalf("norms: hub²=%v auth²=%v", hs, as)
	}
}

func TestHITSRejectsUndirected(t *testing.T) {
	if _, err := HITS(graph.Path(4), 5, Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestHITSQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomDirected(40, 160, seed)
		res, err := HITS(g, 10, Config{Workers: 2})
		if err != nil {
			return false
		}
		var ops seq.Ops
		hub, auth := seq.HITS(g, 10, &ops)
		for v := range hub {
			if math.Abs(res.Hub[v]-hub[v]) > 1e-8 || math.Abs(res.Auth[v]-auth[v]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
