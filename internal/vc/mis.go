package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Standalone maximal independent set by Luby's algorithm — the
// primitive inside Table 1 row 12's coloring, exposed directly:
// expected O(log n) rounds of tentative-selection (probability
// 1/(2d(v))), smallest-ID conflict resolution, and winner-neighborhood
// removal.

// MISResult flags the vertices in the maximal independent set.
type MISResult struct {
	InSet []bool
	Size  int
	Stats *bsp.Stats
}

const (
	misUndecided int8 = iota
	misIn
	misOut
)

type misValue struct {
	state     int8
	tentative bool
}

type misProgram struct {
	phase int // master: tent / resolve / cleanup cycle
}

func (p *misProgram) Init(g *graph.Graph, id VertexID) misValue { return misValue{} }

func (p *misProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	if mc.Superstep() > 0 {
		switch p.phase {
		case colTent:
			p.phase = colResolve
		case colResolve:
			p.phase = colCleanup
		case colCleanup:
			if undecided, _ := mc.Agg("undecided").(int64); undecided == 0 {
				mc.Halt()
				return
			}
			p.phase = colTent
		}
	}
	mc.SetGlobal("phase", p.phase)
}

func (p *misProgram) Compute(ctx *pregel.Context[misValue, colMsg], msgs []colMsg) {
	v := ctx.Value()
	if v.state != misUndecided {
		return
	}
	switch ctx.Global("phase").(int) {
	case colTent:
		v.tentative = false
		d := ctx.OutDegree()
		if d == 0 {
			v.state = misIn // isolated: trivially in the MIS
			return
		}
		if ctx.Rand().Float64() < 1/(2*float64(d)) {
			v.tentative = true
			ctx.SendToNeighbors(colMsg{Kind: colMsgTent, From: ctx.ID()})
		}
	case colResolve:
		if !v.tentative {
			return
		}
		win := true
		for _, m := range msgs {
			if m.Kind == colMsgTent && m.From < ctx.ID() {
				win = false
				break
			}
		}
		if win {
			v.state = misIn
			ctx.SendToNeighbors(colMsg{Kind: colMsgWin, From: ctx.ID()})
		}
	case colCleanup:
		for _, m := range msgs {
			if m.Kind == colMsgWin {
				v.state = misOut // neighbor entered the set
				break
			}
		}
		if v.state == misUndecided {
			// Remove decided neighbors from the working adjacency so
			// future degrees reflect the shrinking candidate graph.
			winners := map[VertexID]bool{}
			for _, m := range msgs {
				if m.Kind == colMsgWin {
					winners[m.From] = true
				}
			}
			if len(winners) > 0 {
				adj := ctx.OutEdges()
				kept := make([]graph.Edge, 0, len(adj))
				for _, e := range adj {
					if !winners[e.Dst] {
						kept = append(kept, e)
					}
				}
				ctx.SetOutEdges(kept)
			}
			ctx.Aggregate("undecided", int64(1))
		}
	}
}

func (p *misProgram) StateUnits(v *misValue) int64 { return 1 }

// MaximalIndependentSet computes an MIS with Luby's algorithm,
// deterministic for a given Config.Seed.
func MaximalIndependentSet(g *graph.Graph, cfg Config) (*MISResult, error) {
	prog := &misProgram{}
	eng := pregel.NewEngine[misValue, colMsg](g, prog, engineCfg[colMsg](cfg))
	eng.RegisterAggregator("undecided", pregel.SumInt64())
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &MISResult{InSet: make([]bool, g.N()), Stats: res.Stats}
	for v, val := range res.Values {
		if val.state == misIn {
			out.InSet[v] = true
			out.Size++
		}
	}
	return out, nil
}
