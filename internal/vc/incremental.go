// Incremental maintenance for the monotone vertex programs on evolving
// graphs: instead of recomputing from scratch after every mutation
// batch, a prior job's converged state is repaired by re-activating
// only the vertices the graph delta could have affected, and draining
// them through the async engine's worklist FIFO (the shared
// runtime.WorklistRunner) against a pinned graph.DeltaCSR view.
//
// The correctness contract is strict: an incremental run converges to a
// result byte-identical to a from-scratch run on the mutated graph.
// For CC and SSSP that holds because both compute the unique fixpoint
// of a monotone operator (min member ID per component; min path-sum per
// vertex) whose value does not depend on the update schedule — the seed
// analysis only has to re-activate a superset of the vertices whose
// fixpoint value changed. PageRank's eps-thresholded fixpoint is
// schedule-dependent in its low bits, so incremental PageRank instead
// memoizes a fixed-K power iteration (incremental_pagerank.go) and is
// byte-identical by construction.
//
// Each incremental state records the graph epoch it is valid for;
// Graph.MutationsSince(epoch) supplies the delta. If the history is
// unavailable — out-of-band mutation, truncated log, stale parameters —
// the run falls back to a cold start (Cold=true on the returned state),
// which is itself the from-scratch baseline the differential suite
// compares against.
package vc

import (
	"context"
	"errors"
	"math"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// IncConfig controls an incremental run. The fault/checkpoint/job
// fields mirror async.Config: one driver step is one epoch of up to
// CheckpointEvery (default 64) updates, at whose boundary faults fire
// and checkpoints are taken.
type IncConfig struct {
	// MaxUpdates caps total vertex updates (default 200·(n+64)).
	MaxUpdates int
	// CheckpointEvery, when positive, snapshots values + worklist every
	// k updates and sets the fault-detection epoch length.
	CheckpointEvery int
	// FullSnapshotEvery, when > 1, stores only every Nth checkpoint as
	// a full snapshot; the generations between are dirty-set deltas
	// covering just the vertices updated since the previous frame
	// (runtime.DeltaPolicy). 0 or 1 keeps every checkpoint full.
	FullSnapshotEvery int
	// Faults schedules deterministic fault injection at epoch
	// boundaries (crash, drop/dup of the activation batch, checkpoint
	// corruption), exactly as in the async engine.
	Faults *rt.FaultPlan
	// Ctx aborts the run at the next epoch boundary.
	Ctx context.Context
	// Pool, when non-nil, leases the single worker from a shared pool.
	Pool *rt.Pool
	// Job, when non-nil, binds the run to a scheduler-admitted job
	// (share must be 1 — the worklist drain is sequential).
	Job *rt.Job
}

// ErrIncrementalDirected rejects incremental CC/SSSP on directed
// graphs: their update rules pull over out-spans, which equals the
// in-neighborhood only for undirected graphs (the async engine has the
// same restriction).
var ErrIncrementalDirected = errors.New("vc: incremental cc/sssp require an undirected graph")

// incEpochLen mirrors the async engine's default fault-detection epoch.
const incEpochLen = 64

func (cfg *IncConfig) epochLen() int {
	if cfg.CheckpointEvery > 0 {
		return cfg.CheckpointEvery
	}
	return incEpochLen
}

func (cfg *IncConfig) maxUpdates(n int) int {
	if cfg.MaxUpdates > 0 {
		return cfg.MaxUpdates
	}
	return 200 * (n + 64)
}

// runIncWorklist drains the seeded worklist to quiescence under the
// shared FIFO-epoch policy. seeds nil means every vertex (a cold
// start); otherwise a rollback with no readable checkpoint replays
// exactly the seed set, keeping faulted runs byte-identical.
func runIncWorklist[V any](name string, values *[]V, update func(VertexID) []VertexID, seeds []VertexID, n int, cold bool, cfg IncConfig) (*bsp.Stats, error) {
	queue := rt.NewFIFO(n)
	if cold {
		for v := 0; v < n; v++ {
			queue.Push(VertexID(v))
		}
	} else {
		queue.PushAll(seeds)
	}
	stats := &bsp.Stats{Workers: 1, N: n}
	p := &rt.WorklistRunner[V]{
		Name:       name,
		Update:     update,
		Values:     values,
		Queue:      queue,
		N:          n,
		EpochLen:   cfg.epochLen(),
		MaxUpdates: cfg.maxUpdates(n),
		CapErr:     bsp.ErrSuperstepCap,
	}
	if cfg.Faults != nil {
		p.PristineValues = append([]V(nil), *values...)
		if !cold {
			p.PristineQueue = queue.Snapshot()
		}
	}
	d := rt.NewDriver[*rt.WorklistSnapshot[V]](p, stats, rt.DriverConfig{
		Name:              name,
		Workers:           1,
		MaxSteps:          math.MaxInt,
		CapErr:            bsp.ErrSuperstepCap,
		CheckpointEvery:   cfg.CheckpointEvery,
		FullSnapshotEvery: cfg.FullSnapshotEvery,
		Faults:            cfg.Faults,
		EpochSaves:        true,
		Ctx:               cfg.Ctx,
		Pool:              cfg.Pool,
		Job:               cfg.Job,
	})
	_, err := d.Run()
	return stats, err
}

// --- Incremental connected components (hash-min) ---

// IncCCState is the persistent state of incremental CC: the converged
// min-member labels and the graph epoch they are valid for. Cold
// reports whether the run that produced it had to recompute from
// scratch (no usable prior state or history).
type IncCCState struct {
	Epoch  int64
	Labels []VertexID
	Cold   bool
}

// IncrementalCC computes (or incrementally repairs) hash-min connected
// component labels. IncrementalCC is PrepareIncrementalCC(g, prior, cfg)().
func IncrementalCC(g *graph.Graph, prior *IncCCState, cfg IncConfig) (*IncCCState, *bsp.Stats, error) {
	return PrepareIncrementalCC(g, prior, cfg)()
}

// PrepareIncrementalCC splits the run in two, like every engine's
// Prepare form: the delta view is pinned and the seed analysis done now
// (under the caller's graph lock), the returned closure drains the
// worklist lock-free and unpins.
//
// Seeding: an inserted edge re-activates its endpoints (min-label
// propagation pulls, so an endpoint adopting a smaller label re-floods
// it). A deleted edge may split a component, and hash-min cannot raise
// a label — so every vertex whose prior label matches a deleted edge's
// endpoint labels is re-seeded to its own ID and activated (the
// affected component only, per the tentpole). Resetting a whole prior
// label class is what makes multi-batch windows safe: any stale
// too-small label must be the prior minimum of a component some
// deletion touched, and that entire class is reset.
func PrepareIncrementalCC(g *graph.Graph, prior *IncCCState, cfg IncConfig) func() (*IncCCState, *bsp.Stats, error) {
	if g.Directed {
		return func() (*IncCCState, *bsp.Stats, error) { return nil, nil, ErrIncrementalDirected }
	}
	view := g.PinDelta()
	n := view.N()
	labels := make([]VertexID, n)
	var seeds []VertexID
	cold := true
	if prior != nil && len(prior.Labels) == n {
		if muts, ok := g.MutationsSince(prior.Epoch); ok {
			cold = false
			copy(labels, prior.Labels)
			seeds = seedCC(labels, muts)
		}
	}
	if cold {
		for v := range labels {
			labels[v] = VertexID(v)
		}
	}
	update := makeCCUpdate(view, &labels)
	return func() (*IncCCState, *bsp.Stats, error) {
		defer g.UnpinDelta(view)
		stats, err := runIncWorklist[VertexID]("vc: incremental cc", &labels, update, seeds, n, cold, cfg)
		if err != nil {
			return nil, stats, err
		}
		return &IncCCState{Epoch: view.Epoch(), Labels: labels, Cold: cold}, stats, nil
	}
}

// seedCC resets the prior label classes struck by deletions and
// collects the activation seeds (reset vertices + insert endpoints).
// labels is modified in place from the prior labels.
func seedCC(labels []VertexID, muts []graph.Mutation) []VertexID {
	var seeds []VertexID
	affected := make(map[VertexID]bool)
	for _, m := range muts {
		switch m.Op {
		case graph.InsertEdge:
			seeds = append(seeds, m.U, m.V)
		case graph.DeleteEdge:
			// Both endpoints' prior classes: in a converged prior state
			// they coincide, but the deleted edge may have been
			// inserted after prior converged, bridging two classes.
			affected[labels[m.U]] = true
			affected[labels[m.V]] = true
		}
	}
	if len(affected) > 0 {
		for w := range labels {
			if affected[labels[w]] {
				labels[w] = VertexID(w)
				seeds = append(seeds, VertexID(w))
			}
		}
	}
	return seeds
}

// makeCCUpdate returns the hash-min update over the delta view: adopt
// the minimum label among self and neighbors; on change, re-activate
// the neighborhood. The activation slice is a reused scratch buffer
// (the FIFO copies it before the next update).
func makeCCUpdate(view *graph.DeltaCSR, labels *[]VertexID) func(VertexID) []VertexID {
	var scratch []VertexID
	return func(v VertexID) []VertexID {
		ls := *labels
		min := ls[v]
		scratch = scratch[:0]
		view.ForEachOut(v, func(d VertexID, _ float64) {
			scratch = append(scratch, d)
			if ls[d] < min {
				min = ls[d]
			}
		})
		if min < ls[v] {
			ls[v] = min
			return scratch
		}
		return nil
	}
}
