package vc

import (
	"fmt"
	"reflect"
	"testing"

	"vcgraph/internal/async"
	"vcgraph/internal/blockcentric"
	"vcgraph/internal/bsp"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	rt "vcgraph/internal/runtime"
)

// Packed-state differential suite: every algorithm with a bit-packed
// variant (PackedState) must produce runs byte-identical to its dense
// twin — same outputs AND same per-superstep cost records — across
// engines, partitioners, direction modes, and fault plans, on both
// flat (int32) and varint-delta-packed CSR snapshots. Byte-packing
// state or edges is a representation change only; any observable
// difference is a bug.

// packedCell pairs a dense run with its packed-state twin under one
// engine × configuration.
type packedCell struct {
	name       string
	epochSaves bool
	// looseWork marks engines whose Work counters depend on map
	// iteration order run-to-run (the block-centric local BFS rescans),
	// where only the order-independent superstep fields can be compared.
	looseWork bool
	// noLanes marks cells that move no message batches over lanes (the
	// GAS pull path gathers neighbor state directly), where lane fault
	// events can never fire: output identity is still asserted but the
	// recovery counters are not.
	noLanes bool
	dense   func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error)
	packed  func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error)
}

// stripWork zeroes the order-dependent fields of a superstep record.
func stripWork(ss []bsp.SuperstepStats) []bsp.SuperstepStats {
	out := make([]bsp.SuperstepStats, len(ss))
	for i, s := range ss {
		s.Work = nil
		s.MaxWork = 0
		s.Cost = 0
		out[i] = s
	}
	return out
}

// runPackedDifferential holds each cell's packed variant to its dense
// baseline: identical values and superstep records fault-free, and
// identical values again under every fault case and seeded plan.
func runPackedDifferential(t *testing.T, cells []packedCell) {
	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			base, dstats, err := cell.dense(0, nil)
			if err != nil {
				t.Fatalf("dense run: %v", err)
			}
			got, pstats, err := cell.packed(0, nil)
			if err != nil {
				t.Fatalf("packed run: %v", err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("packed values differ from dense")
			}
			ds, ps := dstats.Supersteps, pstats.Supersteps
			if cell.looseWork {
				ds, ps = stripWork(ds), stripWork(ps)
			}
			if !reflect.DeepEqual(ds, ps) {
				t.Fatalf("packed superstep records differ from dense:\ndense:  %+v\npacked: %+v", ds, ps)
			}
			if dstats.MaxStatePerDeg != pstats.MaxStatePerDeg {
				t.Fatalf("state balance differs: dense %v, packed %v", dstats.MaxStatePerDeg, pstats.MaxStatePerDeg)
			}

			for _, fc := range faultCases() {
				fc := fc
				t.Run(fc.name, func(t *testing.T) {
					got, st, err := cell.packed(fc.ck, fc.plan(engineCell{epochSaves: cell.epochSaves}))
					if err != nil {
						t.Fatalf("faulted packed run: %v", err)
					}
					if !reflect.DeepEqual(got, base) {
						t.Fatalf("faulted packed output differs from dense baseline\nrecovery: %+v", st.Recovery)
					}
					if cell.noLanes && (fc.name == "drop-lane" || fc.name == "dup-lane") {
						return
					}
					fc.check(t, st.Recovery)
				})
			}
			for seed := int64(1); seed <= 2; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					got, st, err := cell.packed(2, rt.NewFaultPlan(seed))
					if err != nil {
						t.Fatalf("seeded packed run: %v", err)
					}
					if !reflect.DeepEqual(got, base) {
						t.Fatalf("seed %d packed output differs from dense baseline\nrecovery: %+v", seed, st.Recovery)
					}
				})
			}
		})
	}
}

// diffGraphs returns the two snapshot encodings every packed-state
// cell matrix runs over: the flat int32 CSR and the varint-delta
// packed one, built from identical adjacency.
func diffGraphs(build func() *graph.Graph) []struct {
	name string
	g    *graph.Graph
} {
	flat := build()
	packed := build()
	packed.Encoding = graph.EncodePacked
	return []struct {
		name string
		g    *graph.Graph
	}{{"int32", flat}, {"vdelta", packed}}
}

func TestPackedStateCCDifferential(t *testing.T) {
	for _, enc := range diffGraphs(func() *graph.Graph { return graph.Grid(12, 12) }) {
		g := enc.g
		var cells []packedCell

		ccCell := func(name string, cfg Config) packedCell {
			return packedCell{
				name: name,
				dense: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
					c := cfg
					c.CheckpointEvery, c.Faults = ck, plan
					res, err := HashMinCC(g, c)
					if err != nil {
						return nil, nil, err
					}
					return res.Color, res.Stats, nil
				},
				packed: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
					c := cfg
					c.CheckpointEvery, c.Faults, c.PackedState = ck, plan, true
					res, err := HashMinCC(g, c)
					if err != nil {
						return nil, nil, err
					}
					return res.Color, res.Stats, nil
				},
			}
		}
		for _, p := range []struct {
			name string
			part pregel.Partitioner
		}{{"hash", nil}, {"range", pregel.PartitionRange}} {
			for _, w := range []int{1, 3} {
				cells = append(cells, ccCell(fmt.Sprintf("pregel/%s/w%d", p.name, w), Config{Workers: w, Partition: p.part}))
			}
		}
		cells = append(cells,
			ccCell("pregel/push", Config{Workers: 3, Mode: rt.DirectionPush}),
			ccCell("pregel/pull", Config{Workers: 3, Mode: rt.DirectionPull}),
			ccCell("pregel/nocombiner", Config{Workers: 3, NoCombiner: true}),
			ccCell("pregel/fcs", Config{Workers: 3, FCS: 40}),
		)

		gasCell := func(name string, cfg gas.Config) packedCell {
			return packedCell{
				name:    name,
				noLanes: cfg.Mode == rt.DirectionPull,
				dense: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
					c := cfg
					c.CheckpointEvery, c.Faults = ck, plan
					labels, res, err := gas.ConnectedComponents(g, c)
					if err != nil {
						return nil, nil, err
					}
					return labels, res.Stats, nil
				},
				packed: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
					c := cfg
					c.CheckpointEvery, c.Faults, c.PackedState = ck, plan, true
					labels, res, err := gas.ConnectedComponents(g, c)
					if err != nil {
						return nil, nil, err
					}
					return labels, res.Stats, nil
				},
			}
		}
		for _, w := range []int{1, 3} {
			cells = append(cells, gasCell(fmt.Sprintf("gas/w%d", w), gas.Config{Workers: w}))
		}
		cells = append(cells,
			gasCell("gas/push", gas.Config{Workers: 3, Mode: rt.DirectionPush}),
			gasCell("gas/pull", gas.Config{Workers: 3, Mode: rt.DirectionPull}),
		)

		cells = append(cells, packedCell{
			name: "async", epochSaves: true,
			dense: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				labels, res, err := async.ConnectedComponents(g, async.Config{CheckpointEvery: ck, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return labels, res.Stats, nil
			},
			packed: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				labels, res, err := async.ConnectedComponents(g, async.Config{CheckpointEvery: ck, Faults: plan, PackedState: true})
				if err != nil {
					return nil, nil, err
				}
				return labels, res.Stats, nil
			},
		})

		for _, b := range []int{2, 3} {
			b := b
			cells = append(cells, packedCell{
				name: fmt.Sprintf("blockcentric/b%d", b), looseWork: true,
				dense: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
					res, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: b, CheckpointEvery: ck, Faults: plan})
					if err != nil {
						return nil, nil, err
					}
					return res.Color, res.Stats, nil
				},
				packed: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
					res, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: b, CheckpointEvery: ck, Faults: plan, PackedState: true})
					if err != nil {
						return nil, nil, err
					}
					return res.Color, res.Stats, nil
				},
			})
		}

		t.Run(enc.name, func(t *testing.T) { runPackedDifferential(t, cells) })
	}
}

func TestPackedStateKCoreDifferential(t *testing.T) {
	// Both graphs are simple (no parallel edges, no self-loops), which
	// the packed k-core variant requires: its edge-slot store dedupes
	// through the adjacency where the dense map dedupes by key.
	for _, gr := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(12, 12)},
		{"powerlaw", graph.PreferentialAttachment(200, 3, 7)},
	} {
		for _, encName := range []string{"int32", "vdelta"} {
			g := gr.g
			if encName == "vdelta" {
				g = rebuildWithEncoding(gr.g)
			}
			runPackedDifferential(t, []packedCell{{
				name: gr.name + "/" + encName,
				dense: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
					res, err := KCore(g, Config{Workers: 3, CheckpointEvery: ck, Faults: plan})
					if err != nil {
						return nil, nil, err
					}
					return res.Core, res.Stats, nil
				},
				packed: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
					res, err := KCore(g, Config{Workers: 3, CheckpointEvery: ck, Faults: plan, PackedState: true})
					if err != nil {
						return nil, nil, err
					}
					return res.Core, res.Stats, nil
				},
			}})
		}
	}
}

// rebuildWithEncoding deep-copies a graph's adjacency into a new graph
// whose snapshots use the varint-delta packed encoding.
func rebuildWithEncoding(src *graph.Graph) *graph.Graph {
	c := graph.BuildCSR(src)
	g := graph.New(c.N(), c.Directed)
	g.Encoding = graph.EncodePacked
	for v := 0; v < c.N(); v++ {
		ws := c.OutWeights(graph.VertexID(v))
		var s graph.Scratch
		for i, u := range c.OutSpan(graph.VertexID(v), &s) {
			if !c.Directed && u < graph.VertexID(v) {
				continue // undirected edges appear in both adjacencies
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			g.AddWeightedEdge(graph.VertexID(v), u, w)
		}
	}
	if c.Directed {
		g.EnsureIn()
	}
	return g
}

// TestMutationScriptPackedBase drives one mutation script through a
// flat graph and its packed-encoding twin in lockstep (scriptRig
// mirror): at every query point the incremental algorithms — whose
// delta overlays enumerate base-then-adds over a *compressed* base on
// the twin, re-based mid-script by RebuildEvery — and a from-scratch
// engine run with packed vertex state must be byte-identical to the
// int32 twin.
func TestMutationScriptPackedBase(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rig := newScriptRig(t, 24, 48, seed)
			twin := rig.g.Clone()
			twin.Encoding = graph.EncodePacked
			twin.RebuildEvery = 9 // force mid-script re-basing onto fresh packed bases
			rig.mirror = twin

			flat, packed := &incStates{}, &incStates{}
			check := func() {
				t.Helper()
				ccF, _, err := IncrementalCC(rig.g, flat.cc, IncConfig{})
				if err != nil {
					t.Fatalf("flat incremental CC: %v", err)
				}
				ccP, _, err := IncrementalCC(twin, packed.cc, IncConfig{})
				if err != nil {
					t.Fatalf("packed incremental CC: %v", err)
				}
				if ccF.Cold != ccP.Cold || !reflect.DeepEqual(ccF.Labels, ccP.Labels) {
					t.Fatalf("incremental CC over packed base differs (cold %v/%v)", ccF.Cold, ccP.Cold)
				}
				ssF, _, err := IncrementalSSSP(rig.g, scriptSrc, flat.sssp, IncConfig{})
				if err != nil {
					t.Fatalf("flat incremental SSSP: %v", err)
				}
				ssP, _, err := IncrementalSSSP(twin, scriptSrc, packed.sssp, IncConfig{})
				if err != nil {
					t.Fatalf("packed incremental SSSP: %v", err)
				}
				if !reflect.DeepEqual(ssF.Dist, ssP.Dist) {
					t.Fatal("incremental SSSP over packed base differs")
				}
				prF, _, err := IncrementalPageRank(rig.g, scriptAlpha, scriptK, flat.pr, IncConfig{})
				if err != nil {
					t.Fatalf("flat incremental PageRank: %v", err)
				}
				prP, _, err := IncrementalPageRank(twin, scriptAlpha, scriptK, packed.pr, IncConfig{})
				if err != nil {
					t.Fatalf("packed incremental PageRank: %v", err)
				}
				if !reflect.DeepEqual(prF.Hist, prP.Hist) {
					t.Fatal("incremental PageRank over packed base differs")
				}
				flat.cc, flat.sssp, flat.pr = ccF, ssF, prF
				packed.cc, packed.sssp, packed.pr = ccP, ssP, prP

				// From-scratch engine run combining every axis: flat
				// graph + dense state vs compressed mutated base +
				// bit-packed state.
				dres, err := HashMinCC(rig.g, Config{Workers: 3})
				if err != nil {
					t.Fatalf("dense HashMinCC: %v", err)
				}
				pres, err := HashMinCC(twin, Config{Workers: 3, PackedState: true})
				if err != nil {
					t.Fatalf("packed HashMinCC: %v", err)
				}
				if !reflect.DeepEqual(dres.Color, pres.Color) {
					t.Fatal("packed-state HashMinCC over compressed mutated base differs")
				}
				if !reflect.DeepEqual(dres.Stats.Supersteps, pres.Stats.Supersteps) {
					t.Fatal("packed-state HashMinCC superstep records differ over compressed mutated base")
				}
			}

			check()
			for step := 1; step <= 12; step++ {
				rig.step(1 + rig.rng.Intn(4))
				if step%3 == 0 {
					check()
				}
			}
		})
	}
}

func TestPackedStateColoringDifferential(t *testing.T) {
	for _, gr := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(10, 10)},
		{"powerlaw", graph.PreferentialAttachment(150, 3, 3)},
	} {
		for _, seed := range []int64{1, 5} {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", gr.name, seed), func(t *testing.T) {
				dense, err := ColoringMIS(gr.g, Config{Workers: 3, Seed: seed})
				if err != nil {
					t.Fatalf("dense: %v", err)
				}
				packed, err := ColoringMIS(gr.g, Config{Workers: 3, Seed: seed, PackedState: true})
				if err != nil {
					t.Fatalf("packed: %v", err)
				}
				if !reflect.DeepEqual(packed.Colors, dense.Colors) || packed.K != dense.K {
					t.Fatalf("packed coloring differs: K=%d vs %d", packed.K, dense.K)
				}
				if !reflect.DeepEqual(dense.Stats.Supersteps, packed.Stats.Supersteps) {
					t.Fatalf("packed coloring superstep records differ from dense")
				}

				// The packed program checkpoints its master counters
				// (the dense one cannot), so it must survive the fault
				// matrix against its own fault-free output.
				for _, fc := range faultCases() {
					fc := fc
					t.Run(fc.name, func(t *testing.T) {
						got, err := ColoringMIS(gr.g, Config{Workers: 3, Seed: seed, PackedState: true,
							CheckpointEvery: fc.ck, Faults: fc.plan(engineCell{})})
						if err != nil {
							t.Fatalf("faulted: %v", err)
						}
						if !reflect.DeepEqual(got.Colors, dense.Colors) || got.K != dense.K {
							t.Fatalf("faulted packed coloring differs\nrecovery: %+v", got.Stats.Recovery)
						}
						fc.check(t, got.Stats.Recovery)
					})
				}
			})
		}
	}
}
