package vc

import (
	"math"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	"vcgraph/internal/runtime"
)

// SSSPResult holds the vertex-centric single-source shortest path
// output.
type SSSPResult struct {
	Dist  []float64
	Stats *bsp.Stats
}

type ssspValue struct{ dist float64 }

type ssspProgram struct {
	src VertexID
	// seed warm-starts the run from exported tentative distances
	// (adaptive plan layer handoff); nil means the cold start where
	// only the source is finite. A warm restart re-announces every
	// finite distance at superstep 0, which dominates any message that
	// was in flight when the previous engine stopped.
	seed []float64
}

func (p *ssspProgram) Init(g *graph.Graph, id VertexID) ssspValue {
	if p.seed != nil {
		return ssspValue{dist: p.seed[id]}
	}
	if id == p.src {
		return ssspValue{dist: 0}
	}
	return ssspValue{dist: math.Inf(1)}
}

func (p *ssspProgram) Compute(ctx *pregel.Context[ssspValue, float64], msgs []float64) {
	v := ctx.Value()
	improved := ctx.Superstep() == 0 && ctx.ID() == p.src
	if p.seed != nil && ctx.Superstep() == 0 {
		improved = !math.IsInf(v.dist, 1)
	}
	for _, m := range msgs {
		if m < v.dist {
			v.dist = m
			improved = true
		}
	}
	if improved {
		ctx.ForEachOut(func(dst VertexID, w float64) {
			ctx.SendTo(dst, v.dist+w)
		})
	}
	ctx.VoteToHalt()
}

func (p *ssspProgram) StateUnits(v *ssspValue) int64 { return 1 }

// SSSP runs the Pregel-paper Bellman–Ford style single-source shortest
// path algorithm (Table 1 row 16: O(mn) worst-case work vs. Dijkstra's
// near-linear bound). Weights must be non-negative.
func SSSP(g *graph.Graph, src VertexID, cfg Config) (*SSSPResult, error) {
	return PrepareSSSP(g, src, cfg)()
}

// PrepareSSSP is the job-scoped form of SSSP: the engine is
// constructed (and the snapshot pinned) now, under whatever lock the
// caller holds; the returned closure runs lock-free.
func PrepareSSSP(g *graph.Graph, src VertexID, cfg Config) func() (*SSSPResult, error) {
	prog := &ssspProgram{src: src}
	ecfg := engineCfg[float64](cfg)
	// SSSP sends a distinct distance per edge (SendTo, never a
	// broadcast), so a pulled superstep would find no broadcast slots
	// and waste an O(n+m) transpose scan. Pin the push path.
	ecfg.Mode = runtime.DirectionPush
	if !cfg.NoCombiner {
		ecfg.Combiner = func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		}
	}
	eng := pregel.NewEngine[ssspValue, float64](g, prog, ecfg)
	return func() (*SSSPResult, error) {
		res, err := eng.Run()
		if err != nil {
			return nil, err
		}
		dist := make([]float64, g.N())
		for v, val := range res.Values {
			dist[v] = val.dist
		}
		return &SSSPResult{Dist: dist, Stats: res.Stats}, nil
	}
}
