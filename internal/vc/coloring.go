package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Graph coloring via Luby's maximal independent set (Table 1 row 12):
// each color phase extracts one MIS from the still-uncolored vertices
// with Luby's randomized selection — tentative with probability
// 1/(2d(v)), smallest-ID wins among adjacent tentatives — and colors
// it; neighbors of winners sit the rest of the phase out. K phases of
// expected O(log n) supersteps each: balanced but not BPPA.

// ColoringResult holds the vertex colors (0-based) and the number of
// colors used (the paper's K).
type ColoringResult struct {
	Colors []int
	K      int
	Stats  *bsp.Stats
}

const (
	colTent = iota
	colResolve
	colCleanup
)

const (
	colMsgTent int8 = iota
	colMsgWin
)

type colMsg struct {
	Kind int8
	From VertexID
}

type colValue struct {
	color        int
	tentative    bool
	blockedPhase int // the color phase this vertex is blocked for (-1 none)
}

type colProgram struct {
	phase int // master: superstep micro-phase
	c     int // master: current color
}

func (p *colProgram) Init(g *graph.Graph, id VertexID) colValue {
	return colValue{color: -1, blockedPhase: -1}
}

func (p *colProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	if mc.Superstep() > 0 {
		switch p.phase {
		case colTent:
			p.phase = colResolve
		case colResolve:
			p.phase = colCleanup
		case colCleanup:
			uncolored, _ := mc.Agg("uncolored").(int64)
			remaining, _ := mc.Agg("remaining").(int64)
			if uncolored == 0 {
				mc.Halt()
				return
			}
			if remaining == 0 {
				p.c++ // the phase's MIS is maximal: next color
			}
			p.phase = colTent
		}
	}
	mc.SetGlobal("phase", p.phase)
	mc.SetGlobal("color", p.c)
}

func (p *colProgram) Compute(ctx *pregel.Context[colValue, colMsg], msgs []colMsg) {
	v := ctx.Value()
	if v.color >= 0 {
		return
	}
	c := ctx.Global("color").(int)
	switch ctx.Global("phase").(int) {
	case colTent:
		v.tentative = false
		if v.blockedPhase == c {
			return
		}
		d := ctx.OutDegree()
		if d == 0 {
			v.color = c // trivial MIS: isolated (or everything around is colored)
			return
		}
		if ctx.Rand().Float64() < 1/(2*float64(d)) {
			v.tentative = true
			ctx.SendToNeighbors(colMsg{Kind: colMsgTent, From: ctx.ID()})
		}
	case colResolve:
		if !v.tentative {
			return
		}
		win := true
		for _, m := range msgs {
			if m.Kind == colMsgTent && m.From < ctx.ID() {
				win = false
				break
			}
		}
		if win {
			v.color = c
			ctx.SendToNeighbors(colMsg{Kind: colMsgWin, From: ctx.ID()})
		}
	case colCleanup:
		if len(msgs) > 0 {
			winners := make(map[VertexID]bool, len(msgs))
			for _, m := range msgs {
				if m.Kind == colMsgWin {
					winners[m.From] = true
				}
			}
			if len(winners) > 0 {
				adj := ctx.OutEdges()
				kept := make([]graph.Edge, 0, len(adj))
				for _, e := range adj {
					if !winners[e.Dst] {
						kept = append(kept, e)
					}
				}
				ctx.Charge(int64(len(adj)))
				ctx.SetOutEdges(kept)
				v.blockedPhase = c
			}
		}
		ctx.Aggregate("uncolored", int64(1))
		if v.blockedPhase != c {
			ctx.Aggregate("remaining", int64(1))
		}
	}
}

func (p *colProgram) StateUnits(v *colValue) int64 { return 3 }

// ColoringMIS colors the graph with Luby-MIS phases. The result is
// deterministic for a given Config.Seed.
func ColoringMIS(g *graph.Graph, cfg Config) (*ColoringResult, error) {
	ecfg := engineCfg[colMsg](cfg)
	if cfg.PackedState {
		prog := newColPackedProgram(g)
		eng := pregel.NewEngine[struct{}, colMsg](g, prog, ecfg)
		eng.RegisterAggregator("uncolored", pregel.SumInt64())
		eng.RegisterAggregator("remaining", pregel.SumInt64())
		res, err := eng.Run()
		if err != nil {
			return nil, err
		}
		out := &ColoringResult{Colors: make([]int, g.N()), K: prog.c + 1, Stats: res.Stats}
		for v := range res.Values {
			out.Colors[v] = int(prog.color.Get(v)) - 1
		}
		if g.N() == 0 {
			out.K = 0
		}
		return out, nil
	}
	prog := &colProgram{}
	eng := pregel.NewEngine[colValue, colMsg](g, prog, ecfg)
	eng.RegisterAggregator("uncolored", pregel.SumInt64())
	eng.RegisterAggregator("remaining", pregel.SumInt64())
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &ColoringResult{Colors: make([]int, g.N()), K: prog.c + 1, Stats: res.Stats}
	for v, val := range res.Values {
		out.Colors[v] = val.color
	}
	if g.N() == 0 {
		out.K = 0
	}
	return out, nil
}
