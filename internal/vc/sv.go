package vc

import (
	"sort"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Shiloach–Vishkin connected components (Table 1 rows 4, 6, 10),
// following the Pregel formulation of Yan et al.: every vertex u keeps
// a pointer D[u] arranging the vertices into a forest; each round
// performs tree hooking, star hooking (both only onto smaller pointer
// values, keeping D monotonically decreasing) and shortcutting, in
// O(log n) rounds. Each round is a fixed 19-superstep message protocol:
//
//	0  GP_REQ      v asks D[v] for its pointer
//	1  GP_REPLY    parents answer
//	2  STAR_INIT   v learns gp=D[D[v]]; if gp≠D[v], falsify star at v, D[v], gp
//	3  STAR_NOTIFY falsifications land; v asks D[v] for its star flag
//	4  STAR_REPLY  parents answer
//	5  STAR_SET    v adopts parent's star flag; v sends D[v] to neighbors
//	6  TREE_HOOK   if D[v] is a root and a neighbor u has D[u]<D[v]: propose
//	7  HOOK_APPLY  roots apply the minimum proposal (records the hook edge)
//	8-13           star detection again (hooks changed the forest)
//	14 STAR_HOOK   vertices in stars propose hooks of their star root
//	15 HOOK_APPLY  roots apply
//	16 GP_REQ      shortcut query
//	17 GP_REPLY    parents answer
//	18 SHORTCUT    D[v] = D[D[v]]
//
// The master halts after the first round in which nothing changed. The
// algorithm is deliberately not BPPA: a root may receive far more than
// d(v) messages in a superstep — exactly the imbalance the paper
// describes — while the total per-superstep load stays O(m+n).

// SVResult holds the S-V output: component colors (the smallest vertex
// ID of each component, by the monotone-decrease invariant) and the
// hook edges, which form a spanning forest (Table 1 row 10).
type SVResult struct {
	Color     []VertexID
	TreeEdges []graph.UndirectedEdge
	Stats     *bsp.Stats
	snapshots [][]VertexID // per-round D forests when tracing
}

const svPhases = 19

const (
	svReq int8 = iota
	svReply
	svNotStar
	svStReq
	svStReply
	svDVal
	svHook
)

type svMsg struct {
	Kind         int8
	From         VertexID
	D            VertexID
	Star         bool
	EdgeU, EdgeV VertexID
}

type svValue struct {
	d    VertexID
	gp   VertexID
	star bool
}

type svProgram struct {
	trace bool
	// master state
	roundChanged bool
	edges        [][2]VertexID
	snapshots    [][]VertexID
}

func (p *svProgram) Init(g *graph.Graph, id VertexID) svValue {
	return svValue{d: id, gp: id}
}

func (p *svProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	if mc.Superstep() > 0 {
		if ch, ok := mc.Agg("changed").(bool); ok && ch {
			p.roundChanged = true
		}
		if hooked, ok := mc.Agg("hooked").([][2]VertexID); ok {
			p.edges = append(p.edges, hooked...)
		}
		if p.trace {
			if snap, ok := mc.Agg("snapshot").([][2]VertexID); ok && len(snap) > 0 {
				d := make([]VertexID, len(snap))
				for _, pair := range snap {
					d[pair[0]] = pair[1]
				}
				p.snapshots = append(p.snapshots, d)
			}
		}
	}
	if mc.Superstep() > 0 && mc.Superstep()%svPhases == 0 {
		if !p.roundChanged {
			mc.Halt()
			return
		}
		p.roundChanged = false
	}
}

func (p *svProgram) Compute(ctx *pregel.Context[svValue, svMsg], msgs []svMsg) {
	v := ctx.Value()
	switch ctx.Superstep() % svPhases {
	case 0, 8, 16: // GP_REQ
		if p.trace && ctx.Superstep()%svPhases == 0 {
			ctx.Aggregate("snapshot", [2]VertexID{ctx.ID(), v.d})
		}
		ctx.SendTo(v.d, svMsg{Kind: svReq, From: ctx.ID()})
	case 1, 9, 17: // GP_REPLY
		for _, m := range msgs {
			if m.Kind == svReq {
				ctx.SendTo(m.From, svMsg{Kind: svReply, D: v.d})
			}
		}
	case 2, 10: // STAR_INIT
		for _, m := range msgs {
			if m.Kind == svReply {
				v.gp = m.D
			}
		}
		v.star = true
		if v.gp != v.d {
			v.star = false
			ctx.SendTo(v.d, svMsg{Kind: svNotStar})
			ctx.SendTo(v.gp, svMsg{Kind: svNotStar})
		}
	case 3, 11: // STAR_NOTIFY
		for _, m := range msgs {
			if m.Kind == svNotStar {
				v.star = false
			}
		}
		ctx.SendTo(v.d, svMsg{Kind: svStReq, From: ctx.ID()})
	case 4, 12: // STAR_REPLY
		for _, m := range msgs {
			if m.Kind == svStReq {
				ctx.SendTo(m.From, svMsg{Kind: svStReply, Star: v.star})
			}
		}
	case 5, 13: // STAR_SET + D exchange
		for _, m := range msgs {
			if m.Kind == svStReply {
				v.star = m.Star
			}
		}
		ctx.SendToNeighbors(svMsg{Kind: svDVal, From: ctx.ID(), D: v.d})
	case 6, 14: // hook proposals
		minD, minFrom := graph.NoVertex, graph.NoVertex
		for _, m := range msgs {
			if m.Kind != svDVal {
				continue
			}
			if minD == graph.NoVertex || m.D < minD || (m.D == minD && m.From < minFrom) {
				minD, minFrom = m.D, m.From
			}
		}
		ctx.Charge(int64(len(msgs)))
		if minD == graph.NoVertex || minD >= v.d {
			return
		}
		eligible := false
		if ctx.Superstep()%svPhases == 6 {
			eligible = v.gp == v.d // tree hooking: v's parent is a root
		} else {
			eligible = v.star // star hooking: v is in a star
		}
		if eligible {
			ctx.SendTo(v.d, svMsg{Kind: svHook, D: minD, EdgeU: ctx.ID(), EdgeV: minFrom})
		}
	case 7, 15: // HOOK_APPLY at roots
		best := svMsg{D: graph.NoVertex}
		for _, m := range msgs {
			if m.Kind != svHook {
				continue
			}
			if best.D == graph.NoVertex || m.D < best.D ||
				(m.D == best.D && (m.EdgeU < best.EdgeU || (m.EdgeU == best.EdgeU && m.EdgeV < best.EdgeV))) {
				best = m
			}
		}
		if best.D != graph.NoVertex && best.D < v.d {
			v.d = best.D
			ctx.Aggregate("changed", true)
			ctx.Aggregate("hooked", [2]VertexID{best.EdgeU, best.EdgeV})
		}
	case 18: // SHORTCUT
		for _, m := range msgs {
			if m.Kind == svReply {
				v.gp = m.D
			}
		}
		if v.gp != v.d {
			v.d = v.gp
			ctx.Aggregate("changed", true)
		}
	}
}

func (p *svProgram) StateUnits(v *svValue) int64 { return 3 }

// SVCC runs Shiloach–Vishkin connected components. The input must be
// undirected; use WCC for directed graphs.
func SVCC(g *graph.Graph, cfg Config) (*SVResult, error) {
	return runSV(g, cfg, false)
}

// SVCCTrace runs S-V and additionally records the pointer forest D at
// the start of every round — the states the paper's Figures 2 and 3
// illustrate. Intended for small graphs (one n-sized snapshot per
// round).
func SVCCTrace(g *graph.Graph, cfg Config) (*SVResult, [][]VertexID, error) {
	res, err := runSV(g, cfg, true)
	if err != nil {
		return nil, nil, err
	}
	return res, res.snapshots, nil
}

func runSV(g *graph.Graph, cfg Config, trace bool) (*SVResult, error) {
	prog := &svProgram{trace: trace}
	eng := pregel.NewEngine[svValue, svMsg](g, prog, engineCfg[svMsg](cfg))
	eng.RegisterAggregator("changed", pregel.BoolOr())
	eng.RegisterAggregator("hooked", pregel.Collect[[2]VertexID]())
	eng.RegisterAggregator("snapshot", pregel.Collect[[2]VertexID]())
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &SVResult{Color: make([]VertexID, g.N()), Stats: res.Stats, snapshots: prog.snapshots}
	for v, val := range res.Values {
		out.Color[v] = val.d
	}
	for _, e := range prog.edges {
		u, w := e[0], e[1]
		if u > w {
			u, w = w, u
		}
		out.TreeEdges = append(out.TreeEdges, graph.UndirectedEdge{U: u, V: w, W: 1})
	}
	sort.Slice(out.TreeEdges, func(i, j int) bool {
		if out.TreeEdges[i].U != out.TreeEdges[j].U {
			return out.TreeEdges[i].U < out.TreeEdges[j].U
		}
		return out.TreeEdges[i].V < out.TreeEdges[j].V
	})
	return out, nil
}

// WCC computes weakly connected components of a directed graph by
// running S-V on the underlying undirected graph (Table 1 row 6).
func WCC(g *graph.Graph, cfg Config) (*CCResult, error) {
	res, err := SVCC(g.Underlying(), cfg)
	if err != nil {
		return nil, err
	}
	return &CCResult{Color: res.Color, Stats: res.Stats}, nil
}
