package vc

import (
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

// --- Triangle counting / clustering (§3.8 workloads) ---

func TestTrianglesKnownShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"triangle", graph.Complete(3), 1},
		{"k4", graph.Complete(4), 4},
		{"k5", graph.Complete(5), 10},
		{"path", graph.Path(10), 0},
		{"cycle4", graph.Cycle(4), 0},
		{"star", graph.Star(20), 0},
		{"grid", graph.Grid(5, 5), 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := Triangles(tc.g, Config{Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if res.Total != tc.want {
				t.Fatalf("total = %d, want %d", res.Total, tc.want)
			}
		})
	}
}

func TestTrianglesMatchSequential(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(60, 300, seed)
		res, err := Triangles(g, Config{Workers: 4})
		if err != nil {
			return false
		}
		var ops seq.Ops
		per, total := seq.Triangles(g, &ops)
		if res.Total != total {
			return false
		}
		for v := range per {
			if res.PerVertex[v] != per[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClusteringCoefficients(t *testing.T) {
	// K4 minus one edge: the two degree-3... build: 0-1,0-2,0-3,1-2,1-3
	// (missing 2-3). cc(0)=cc(1)=2/3 (two triangles over 3 pairs);
	// cc(2)=cc(3)=1 (their single pair 0-1 is connected).
	g := graph.New(4, false)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	res, err := Triangles(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 2 {
		t.Fatalf("total = %d, want 2", res.Total)
	}
	for v, want := range []float64{2.0 / 3, 2.0 / 3, 1, 1} {
		if !almostEqual(res.Clustering[v], want, 1e-12) {
			t.Fatalf("cc[%d] = %v, want %v", v, res.Clustering[v], want)
		}
	}
	var ops seq.Ops
	per, _ := seq.Triangles(g, &ops)
	seqCC := seq.ClusteringCoefficients(g, per)
	for v := range seqCC {
		if !almostEqual(res.Clustering[v], seqCC[v], 1e-12) {
			t.Fatalf("cc[%d]: vc=%v seq=%v", v, res.Clustering[v], seqCC[v])
		}
	}
}

func TestTrianglesMessageBlowup(t *testing.T) {
	// §3.8: neighborhood exchange ships Θ(Σ d(v)²) data. On a dense
	// random graph the vertex-centric message+work volume must exceed
	// the sequential intersection cost by a growing factor... at least
	// verify the per-vertex receive volume exceeds degree (subgraph
	// view does not fit the d(v) budget).
	g := graph.Random(200, 3000, 9)
	res, err := Triangles(g, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxRecvPerDeg < 2 {
		t.Fatalf("recv/deg = %v; expected neighborhood shipping to exceed degree budget",
			res.Stats.MaxRecvPerDeg)
	}
}

// --- Streaming union-find CC (§3.8 point 3) ---

func TestStreamingCCMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(80, 100, seed)
		var o1, o2 seq.Ops
		got := seq.StreamingCC(g.N(), g.UndirectedEdges(), &o1)
		want := seq.Components(g, &o2)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- Label propagation communities (§3.8 point 4) ---

func TestLabelPropagationDisjointCliques(t *testing.T) {
	// Three disjoint cliques: LPA must find exactly the cliques.
	g := graph.New(15, false)
	for c := 0; c < 3; c++ {
		base := graph.VertexID(c * 5)
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				g.AddEdge(base+graph.VertexID(i), base+graph.VertexID(j))
			}
		}
	}
	res, err := LabelPropagation(g, 0, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		want := res.Label[c*5]
		for i := 0; i < 5; i++ {
			if res.Label[c*5+i] != want {
				t.Fatalf("clique %d split: %v", c, res.Label[c*5:c*5+5])
			}
		}
	}
	if res.Label[0] == res.Label[5] || res.Label[5] == res.Label[10] {
		t.Fatal("distinct cliques merged")
	}
	// Perfect 3-way split of 3 equal cliques: Q = 1 - 1/3.
	if !almostEqual(res.Modularity, 2.0/3, 1e-12) {
		t.Fatalf("modularity = %v, want 2/3", res.Modularity)
	}
}

func TestLabelPropagationTwoCommunities(t *testing.T) {
	// Two dense blobs joined by a single bridge.
	g := graph.New(40, false)
	addBlob := func(base graph.VertexID, n int, seed int64) {
		blob := graph.RandomConnected(n, n*3, seed)
		for _, e := range blob.UndirectedEdges() {
			g.AddEdge(base+e.U, base+e.V)
		}
	}
	addBlob(0, 20, 1)
	addBlob(20, 20, 2)
	g.AddEdge(19, 20)
	res, err := LabelPropagation(g, 0, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity < 0.3 {
		t.Fatalf("modularity = %v; expected clear community structure", res.Modularity)
	}
}

func TestLabelPropagationDeterministicAcrossWorkers(t *testing.T) {
	g := graph.PreferentialAttachment(300, 3, 5)
	a, err := LabelPropagation(g, 0, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LabelPropagation(g, 0, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Label {
		if a.Label[v] != b.Label[v] {
			t.Fatalf("vertex %d label differs across worker counts", v)
		}
	}
}

func TestLabelPropagationOscillationCap(t *testing.T) {
	// A single edge oscillates under synchronous LPA (each endpoint
	// adopts the other's label forever); the round cap must stop it.
	g := graph.Path(2)
	res, err := LabelPropagation(g, 8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 10 {
		t.Fatalf("rounds = %d; oscillation not capped", res.Rounds)
	}
}

func TestModularityBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(50, 150, seed)
		if g.M() == 0 {
			return true
		}
		res, err := LabelPropagation(g, 0, Config{Workers: 2})
		if err != nil {
			return false
		}
		return res.Modularity >= -0.5001 && res.Modularity <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestModularitySingletonAndWhole(t *testing.T) {
	g := graph.RandomConnected(30, 90, 4)
	// Everything in one community: Q = 1 - 1 = ... e_c/m = 1, (deg/2m)^2 = 1.
	one := make([]VertexID, g.N())
	if q := Modularity(g, one); !almostEqual(q, 0, 1e-12) {
		t.Fatalf("single-community modularity = %v, want 0", q)
	}
}

func TestLabelPropagationRecoversSBMCommunities(t *testing.T) {
	// Strong planted partition: LPA should recover the three blocks
	// (up to label naming) and score high modularity.
	g := graph.StochasticBlockModel(90, 3, 0.5, 0.01, 11)
	res, err := LabelPropagation(g, 0, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity < 0.4 {
		t.Fatalf("modularity %v; planted partition not recovered", res.Modularity)
	}
	// Majority label per block must differ across blocks.
	major := func(lo, hi int) VertexID {
		counts := map[VertexID]int{}
		for v := lo; v < hi; v++ {
			counts[res.Label[v]]++
		}
		best, bestN := VertexID(-1), 0
		for l, c := range counts {
			if c > bestN {
				best, bestN = l, c
			}
		}
		if bestN*3 < 2*(hi-lo) {
			t.Fatalf("block [%d,%d) has no 2/3 majority label", lo, hi)
		}
		return best
	}
	a, b, c := major(0, 30), major(30, 60), major(60, 90)
	if a == b || b == c || a == c {
		t.Fatalf("blocks merged: labels %d %d %d", a, b, c)
	}
}

func TestKCoreOnWattsStrogatzLattice(t *testing.T) {
	// beta=0 ring lattice with k=2: every vertex has degree 4 and the
	// graph is 4-regular and 4-connected enough to be a full 4-core.
	g := graph.WattsStrogatz(64, 2, 0, 2)
	res, err := KCore(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	want := seq.KCore(g, &ops)
	for v := range want {
		if res.Core[v] != want[v] {
			t.Fatalf("core[%d]: vc=%d seq=%d", v, res.Core[v], want[v])
		}
	}
}
