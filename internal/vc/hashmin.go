package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// CCResult holds a connected-components labeling: Color[v] is the
// smallest vertex ID in v's component (the paper's component "color").
type CCResult struct {
	Color []VertexID
	Stats *bsp.Stats
}

type hashMinValue struct{ min VertexID }

type hashMinProgram struct {
	// seed warm-starts the run from exported labels (adaptive plan
	// layer handoff); nil means the identity cold start. Superstep 0
	// still folds structural neighbor IDs and re-broadcasts — both are
	// monotone min steps, so a warm restart reaches the same fixpoint
	// as the unswitched run.
	seed []VertexID
}

func (p hashMinProgram) Init(g *graph.Graph, id VertexID) hashMinValue {
	if p.seed != nil {
		return hashMinValue{min: p.seed[id]}
	}
	return hashMinValue{min: id}
}

func (hashMinProgram) Compute(ctx *pregel.Context[hashMinValue, VertexID], msgs []VertexID) {
	v := ctx.Value()
	if ctx.Superstep() == 0 {
		// min over {v} ∪ neighbors(v), then broadcast.
		ctx.ForEachOut(func(dst VertexID, w float64) {
			ctx.Charge(1)
			if dst < v.min {
				v.min = dst
			}
		})
		ctx.SendToNeighbors(v.min)
		ctx.VoteToHalt()
		return
	}
	u := v.min
	for _, m := range msgs {
		if m < u {
			u = m
		}
	}
	if u < v.min {
		v.min = u
		ctx.SendToNeighbors(v.min)
	}
	ctx.VoteToHalt()
}

func (hashMinProgram) StateUnits(v *hashMinValue) int64 { return 1 }

// FinishSerially completes Hash-Min with a sequential min-label
// relaxation seeded from the still-active frontier (the FCS
// optimization of Salihoglu & Widom, enabled via Config.FCS).
func (hashMinProgram) FinishSerially(fc *pregel.FinishContext[hashMinValue, VertexID]) int64 {
	var work int64
	queue := make([]VertexID, 0, len(fc.Active()))
	for _, v := range fc.Active() {
		val := fc.Value(v)
		for _, m := range fc.Inbox(v) {
			work++
			if m < val.min {
				val.min = m
			}
		}
		queue = append(queue, v)
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		label := fc.Value(v).min
		fc.ForEachOut(v, func(dst VertexID, _ float64) {
			work++
			if w := fc.Value(dst); label < w.min {
				w.min = label
				queue = append(queue, dst)
			}
		})
	}
	return work
}

// HashMinCC runs the Hash-Min connected components algorithm of the
// Pregel paper (Table 1 row 3: O(δ) supersteps, O(mδ) work, vs. the
// O(m+n) BFS baseline).
func HashMinCC(g *graph.Graph, cfg Config) (*CCResult, error) {
	return PrepareHashMinCC(g, cfg)()
}

// PrepareHashMinCC is the job-scoped form of HashMinCC: the engine is
// constructed (and the snapshot pinned) now, under whatever lock the
// caller holds; the returned closure runs lock-free.
func PrepareHashMinCC(g *graph.Graph, cfg Config) func() (*CCResult, error) {
	ecfg := engineCfg[VertexID](cfg)
	if !cfg.NoCombiner {
		ecfg.Combiner = func(a, b VertexID) VertexID {
			if a < b {
				return a
			}
			return b
		}
	}
	if cfg.PackedState {
		prog := newHashMinPackedProgram(g.N(), nil)
		eng := pregel.NewEngine[struct{}, VertexID](g, prog, ecfg)
		return func() (*CCResult, error) {
			res, err := eng.Run()
			if err != nil {
				return nil, err
			}
			color := make([]VertexID, g.N())
			for v := range res.Values {
				color[v] = VertexID(prog.labels.Get(v))
			}
			return &CCResult{Color: color, Stats: res.Stats}, nil
		}
	}
	eng := pregel.NewEngine[hashMinValue, VertexID](g, hashMinProgram{}, ecfg)
	return func() (*CCResult, error) {
		res, err := eng.Run()
		if err != nil {
			return nil, err
		}
		color := make([]VertexID, g.N())
		for v, val := range res.Values {
			color[v] = val.min
		}
		return &CCResult{Color: color, Stats: res.Stats}, nil
	}
}
