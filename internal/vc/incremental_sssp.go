package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
)

// incInf is the unreachable-distance sentinel, matching the async
// engine's label-correcting SSSP (1e308, not math.Inf) so incremental
// and async from-scratch results are byte-identical including
// unreachable vertices.
const incInf = 1e308

// Unreachable is the exported unreachable-distance sentinel of the
// incremental SSSP state. Callers seeding IncSSSPState.Dist from
// another engine's output (which may use +Inf) must normalize
// unreachable entries to this value.
const Unreachable = incInf

// IncSSSPState is the persistent state of incremental SSSP: converged
// distances from Src at graph epoch Epoch.
type IncSSSPState struct {
	Epoch int64
	Src   VertexID
	Dist  []float64
	Cold  bool
}

// IncrementalSSSP computes (or incrementally repairs) single-source
// shortest paths. IncrementalSSSP is PrepareIncrementalSSSP(g, src, prior, cfg)().
func IncrementalSSSP(g *graph.Graph, src VertexID, prior *IncSSSPState, cfg IncConfig) (*IncSSSPState, *bsp.Stats, error) {
	return PrepareIncrementalSSSP(g, src, prior, cfg)()
}

// PrepareIncrementalSSSP pins the delta view and performs the seed
// analysis now; the returned closure drains the worklist lock-free.
//
// Seeding: an inserted edge can only shorten distances, so its
// endpoints re-relax and propagate. A deleted edge can lengthen them —
// label-correcting cannot raise a settled value, so every distance the
// deletion might have supported is invalidated first: starting from
// endpoints whose recorded distance is tight through a deleted edge
// (dist == other endpoint's dist + logged weight), the invalidation
// closure follows tight edges of the *new* graph (dist[z] == dist[x]+w
// with x already invalid), computed against the prior distances. The
// closure is reset to +inf and re-relaxed along with its current
// neighborhood. Over-invalidation is harmless — re-relaxation restores
// any value that was still achievable — and the closure provably
// contains every vertex whose recorded distance became unachievable:
// such a distance was produced by a chain of tight edges from the
// source that now crosses a deleted edge.
func PrepareIncrementalSSSP(g *graph.Graph, src VertexID, prior *IncSSSPState, cfg IncConfig) func() (*IncSSSPState, *bsp.Stats, error) {
	if g.Directed {
		return func() (*IncSSSPState, *bsp.Stats, error) { return nil, nil, ErrIncrementalDirected }
	}
	view := g.PinDelta()
	n := view.N()
	dist := make([]float64, n)
	var seeds []VertexID
	cold := true
	if prior != nil && prior.Src == src && len(prior.Dist) == n {
		if muts, ok := g.MutationsSince(prior.Epoch); ok {
			cold = false
			copy(dist, prior.Dist)
			seeds = seedSSSP(view, dist, src, muts)
		}
	}
	if cold {
		for v := range dist {
			dist[v] = incInf
		}
		dist[src] = 0
	}
	update := makeSSSPUpdate(view, &dist, src)
	return func() (*IncSSSPState, *bsp.Stats, error) {
		defer g.UnpinDelta(view)
		stats, err := runIncWorklist[float64]("vc: incremental sssp", &dist, update, seeds, n, cold, cfg)
		if err != nil {
			return nil, stats, err
		}
		return &IncSSSPState{Epoch: view.Epoch(), Src: src, Dist: dist, Cold: cold}, stats, nil
	}
}

// seedSSSP computes the invalidation closure of the deletions against
// the prior distances, resets it to +inf, and returns the activation
// seeds: the closure, its current neighborhood, and insert endpoints.
// dist is modified in place from the prior distances.
func seedSSSP(view *graph.DeltaCSR, dist []float64, src VertexID, muts []graph.Mutation) []VertexID {
	var seeds []VertexID
	invalid := make(map[VertexID]bool)
	var frontier []VertexID
	mark := func(v VertexID) {
		if v != src && !invalid[v] {
			invalid[v] = true
			frontier = append(frontier, v)
		}
	}
	for _, m := range muts {
		switch m.Op {
		case graph.InsertEdge:
			seeds = append(seeds, m.U, m.V)
		case graph.DeleteEdge:
			// The logged weight is the weight actually removed, so the
			// tightness test reconstructs the deleted edge exactly.
			if dist[m.V] == dist[m.U]+m.W {
				mark(m.V)
			}
			if dist[m.U] == dist[m.V]+m.W {
				mark(m.U)
			}
		}
	}
	// Propagate invalidation through tight edges of the current graph:
	// z's recorded distance may be supported by x's, which is gone.
	for len(frontier) > 0 {
		x := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		view.ForEachOut(x, func(z VertexID, w float64) {
			if !invalid[z] && dist[z] == dist[x]+w {
				mark(z)
			}
		})
	}
	for v := range invalid {
		dist[v] = incInf
	}
	// Activate the closure and its current neighbors (the neighbors
	// hold the valid distances re-relaxation pulls from; the closure's
	// own updates then flood outward as needed). Map iteration order is
	// irrelevant: the FIFO dedups and the fixpoint is schedule-free,
	// but the seed list must be deterministic for fault replay — so
	// collect in vertex order.
	if len(invalid) > 0 {
		for v := 0; v < len(dist); v++ {
			if !invalid[VertexID(v)] {
				continue
			}
			seeds = append(seeds, VertexID(v))
			view.ForEachOut(VertexID(v), func(z VertexID, _ float64) {
				seeds = append(seeds, z)
			})
		}
	}
	return seeds
}

// makeSSSPUpdate returns the label-correcting update over the delta
// view, matching the async engine's ssspProgram: recompute the best
// offer from the (undirected) neighborhood; on improvement, adopt it
// and re-activate the neighbors.
func makeSSSPUpdate(view *graph.DeltaCSR, dist *[]float64, src VertexID) func(VertexID) []VertexID {
	var scratch []VertexID
	return func(v VertexID) []VertexID {
		ds := *dist
		d := incInf
		if v == src {
			d = 0
		}
		scratch = scratch[:0]
		view.ForEachOut(v, func(u VertexID, w float64) {
			scratch = append(scratch, u)
			if nd := ds[u] + w; nd < d {
				d = nd
			}
		})
		if d < ds[v] {
			ds[v] = d
			return scratch
		}
		return nil
	}
}
