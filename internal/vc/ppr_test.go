package vc

import (
	"math"
	"sort"
	"testing"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

func topK(scores []float64, k int) []VertexID {
	idx := make([]VertexID, len(scores))
	for i := range idx {
		idx[i] = VertexID(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		if scores[idx[i]] != scores[idx[j]] {
			return scores[idx[i]] > scores[idx[j]]
		}
		return idx[i] < idx[j]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

func TestPPRScoresSumToOne(t *testing.T) {
	g := graph.RandomConnected(200, 600, 3)
	res, err := PersonalizedPageRank(g, 0, 20000, 0.15, Config{Workers: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range res.Scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("terminal mass %v, want 1 (every walk ends somewhere)", sum)
	}
}

func TestPPRApproximatesExact(t *testing.T) {
	g := graph.PreferentialAttachment(300, 3, 5)
	res, err := PersonalizedPageRank(g, 7, 60000, 0.15, Config{Workers: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	exact := seq.PersonalizedPageRank(g, 7, 0.15, 200, &ops)
	// Monte Carlo: check top-10 overlap and absolute error on the head.
	gotTop := topK(res.Scores, 10)
	wantTop := topK(exact, 10)
	wantSet := map[VertexID]bool{}
	for _, v := range wantTop {
		wantSet[v] = true
	}
	overlap := 0
	for _, v := range gotTop {
		if wantSet[v] {
			overlap++
		}
	}
	if overlap < 6 {
		t.Fatalf("top-10 overlap %d/10: estimator far from exact PPR\nest top: %v\nexact top: %v",
			overlap, gotTop, wantTop)
	}
	for v := range exact {
		if exact[v] > 0.01 && math.Abs(res.Scores[v]-exact[v]) > 0.5*exact[v] {
			t.Fatalf("vertex %d: est %v vs exact %v", v, res.Scores[v], exact[v])
		}
	}
}

func TestPPRSourceDominates(t *testing.T) {
	g := graph.RandomConnected(100, 300, 7)
	res, err := PersonalizedPageRank(g, 42, 20000, 0.15, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range res.Scores {
		if VertexID(v) != 42 && s > res.Scores[42] {
			t.Fatalf("vertex %d (%v) outranks the source (%v)", v, s, res.Scores[42])
		}
	}
}

func TestPPRDeterministicForSeed(t *testing.T) {
	g := graph.RandomConnected(80, 240, 2)
	run := func(workers int) []float64 {
		res, err := PersonalizedPageRank(g, 0, 5000, 0.15, Config{Workers: workers, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.Scores
	}
	a, b := run(1), run(8)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d: %v vs %v across worker counts", v, a[v], b[v])
		}
	}
}

func TestLinkPredictionStaysInCommunity(t *testing.T) {
	// SBM with strong blocks: predicted links for a block-0 vertex
	// should overwhelmingly land in block 0.
	g := graph.StochasticBlockModel(120, 3, 0.3, 0.005, 13)
	preds, _, err := LinkPrediction(g, 5, 10, 40000, Config{Workers: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	inBlock := 0
	for _, v := range preds {
		if int(v) < 40 {
			inBlock++
		}
	}
	if inBlock*10 < len(preds)*8 {
		t.Fatalf("only %d/%d predictions inside the source's community: %v", inBlock, len(preds), preds)
	}
	// Predictions are non-neighbors by construction.
	nbrs := map[VertexID]bool{5: true}
	for _, e := range g.Out[5] {
		nbrs[e.Dst] = true
	}
	for _, v := range preds {
		if nbrs[v] {
			t.Fatalf("predicted an existing edge to %d", v)
		}
	}
}

func TestPPRWalksAreMessages(t *testing.T) {
	// The Pregel formulation's cost: total messages ≈ walks × expected
	// walk length (1/c - 1 forwarding steps per walk).
	g := graph.RandomConnected(100, 400, 8)
	walks := 10000
	res, err := PersonalizedPageRank(g, 0, walks, 0.2, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	expected := float64(walks) * (1/0.2 - 1)
	got := float64(res.Stats.TotalMessages)
	if got < expected*0.8 || got > expected*1.2 {
		t.Fatalf("messages %v; expected ≈ %v (walks × (1/c − 1))", got, expected)
	}
}
