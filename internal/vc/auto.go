// Adaptive plan layer orchestration: run an algorithm under engine
// "auto". A planner (internal/plan) picks the starting configuration
// from sampled graph statistics, every engine run is consulted at its
// superstep barriers through runtime.DriverConfig.Replan, and when the
// planner decides mid-run that another configuration wins, the engine
// aborts with runtime.ErrHandoff, the orchestrator exports the vertex
// values at the barrier, and a freshly prepared engine resumes them.
//
// Handoff protocol (warm restart, not state transplant): only vertex
// values cross the boundary — never inboxes, halt flags, or worklists.
// The destination engine starts with every vertex active and
// re-announces state in its first superstep. For the monotone min-fold
// algorithms (Hash-Min components, SSSP relaxation) a re-announced
// label dominates any message that was in flight at the barrier, so
// the fixpoint is byte-identical to an unswitched run. For fixed-K
// PageRank the orchestrator tracks how many rank folds each segment
// completed and runs the remainder; the first superstep after a
// handoff regenerates exactly the messages that were discarded (the
// ranks they derive from are unchanged), so the k-th iterate is again
// bit-identical within the canonical fold-order family (single-worker
// pregel, gas, block-centric push over a range partition).
//
// All segments run against one pinned CSR snapshot: each engine is
// handed Config.Snapshot plus a partition derived from that snapshot,
// so a handoff never observes concurrent graph growth.
package vc

import (
	"errors"
	"fmt"
	"math"

	"vcgraph/internal/async"
	"vcgraph/internal/blockcentric"
	"vcgraph/internal/bsp"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/plan"
	"vcgraph/internal/pregel"
	"vcgraph/internal/runtime"
)

// AutoConfig configures an engine-"auto" run: the shared engine knobs
// plus the planner.
type AutoConfig struct {
	Config
	// Planner holds the replanning knobs; nil means defaults.
	Planner *plan.Planner
	// Script, when non-empty, forces the decision sequence instead of
	// consulting the planner: Script[0] replaces the initial decision
	// and every later entry forces a live handoff to its Plan at the
	// first barrier at or past its Step. This is how the differential
	// tests pin a switch at an exact superstep; it is also reachable
	// from benchmarks that want a fixed plan under the auto harness.
	Script []plan.Decision
	// Trace, when non-nil, observes each decision as it is taken
	// (CLIs print them; the daemon logs them).
	Trace func(plan.Decision)
}

// AutoResult reports what the plan layer did around the algorithm
// result: the merged statistics of all segments and the decision log.
type AutoResult struct {
	Stats      *bsp.Stats      `json:"-"`
	Decisions  []plan.Decision `json:"decisions"`
	GraphStats plan.GraphStats `json:"graph"`
	Segments   int             `json:"segments"`
}

// autoWorkers resolves the worker share every segment runs with. All
// segments must agree (the job lease is fixed), so the orchestrator
// resolves it once instead of leaning on per-engine defaults.
func autoWorkers(c Config) int {
	if c.Job != nil {
		return c.Job.Workers()
	}
	if c.Workers > 0 {
		return c.Workers
	}
	return 4
}

// segmentFn runs one engine segment under the given decision, seeded
// with exported values (nil on the first segment), wiring hook as the
// engine's Replan callback. It returns the vertex values at exit —
// final on success, at the handoff barrier on runtime.ErrHandoff — and
// the segment's statistics.
type segmentFn[V any] func(d plan.Decision, seed []V, hook func(step, pending int) bool) ([]V, *bsp.Stats, error)

// runAuto is the engine-agnostic segment loop shared by the three
// auto algorithms.
func runAuto[V any](cfg AutoConfig, gs plan.GraphStats, caps plan.Caps, run segmentFn[V]) ([]V, *AutoResult, error) {
	planner := cfg.Planner
	scripted := len(cfg.Script) > 0
	cur := planner.Initial(gs, caps)
	if scripted {
		cur = cfg.Script[0]
		if cur.Reason == "" {
			cur.Reason = "scripted"
		}
	}
	if cfg.Trace != nil {
		cfg.Trace(cur)
	}
	res := &AutoResult{Decisions: []plan.Decision{cur}, GraphStats: gs}
	var segStats []*bsp.Stats
	var hist []bsp.SuperstepStats
	var seed []V
	globalBase := 0
	switches := 0
	scriptIdx := 1
	for {
		var next plan.Decision
		handoff := false
		hook := func(step, pending int) bool {
			// The driver consults Replan at every barrier; pending is
			// the frontier entering the next superstep. Accumulate it
			// as signal history so the planner sees the run's shape
			// without reaching into a live engine.
			hist = append(hist, bsp.SuperstepStats{Frontier: int64(pending)})
			if step == 0 {
				return false
			}
			globalAt := globalBase + step
			if scripted {
				if scriptIdx < len(cfg.Script) && globalAt >= cfg.Script[scriptIdx].Step {
					next = cfg.Script[scriptIdx]
					next.Step = globalAt
					if next.Reason == "" {
						next.Reason = "scripted"
					}
					scriptIdx++
					handoff = true
				}
				return handoff
			}
			if globalAt%planner.ReplanEvery() != 0 {
				return false
			}
			sig := planner.HarvestWindow(hist, gs.N)
			d, ok := planner.Replan(cur.Plan, gs, caps, sig, globalAt, switches)
			if !ok {
				return false
			}
			next = d
			handoff = true
			return true
		}
		values, st, err := run(cur, seed, hook)
		if st != nil {
			segStats = append(segStats, st)
			globalBase += st.NumSupersteps()
		}
		res.Stats = MergeStats(segStats...)
		res.Segments = len(segStats)
		switch {
		case err == nil:
			return values, res, nil
		case errors.Is(err, runtime.ErrHandoff) && handoff:
			seed = values
			switches++
			res.Decisions = append(res.Decisions, next)
			if cfg.Trace != nil {
				cfg.Trace(next)
			}
			cur = next
		default:
			return nil, res, err
		}
	}
}

// fixedOwner adapts a snapshot-derived owner array to the engines'
// Partitioner hook, ignoring the live graph entirely.
func fixedOwner(owner []int32) runtime.Partitioner {
	return func(*graph.Graph, int) []int32 { return owner }
}

// --- auto PageRank ---

// PageRankAuto runs k iterations of PageRank under the adaptive plan
// layer.
func PageRankAuto(g *graph.Graph, alpha float64, k int, cfg AutoConfig) (*PageRankResult, *AutoResult, error) {
	return PrepareAutoPageRank(g, alpha, k, cfg)()
}

// PrepareAutoPageRank is the job-scoped form of PageRankAuto: the
// snapshot is pinned and sampled now, the returned closure runs the
// segment loop lock-free.
func PrepareAutoPageRank(g *graph.Graph, alpha float64, k int, cfg AutoConfig) func() (*PageRankResult, *AutoResult, error) {
	csr := g.Pin()
	workers := autoWorkers(cfg.Config)
	n := csr.N()
	gs := plan.Sample(csr, workers)
	caps := plan.Caps{Algorithm: "pagerank", HasCombiner: !cfg.NoCombiner, FixedK: true, Workers: workers}
	// done counts completed rank folds across segments; each segment
	// runs the remaining k-done. A pregel/block-centric segment's
	// superstep 0 only sends (its folds are supersteps minus one),
	// while gas folds at every iteration including the first.
	done := 0
	run := func(d plan.Decision, seed []float64, hook func(int, int) bool) ([]float64, *bsp.Stats, error) {
		remaining := k - done
		if remaining < 0 {
			remaining = 0
		}
		owner := d.Plan.Owner(csr, workers)
		switch d.Plan.Engine {
		case plan.EnginePregel:
			ecfg := engineCfg[float64](cfg.Config)
			ecfg.Workers = workers
			ecfg.Snapshot = csr
			ecfg.Replan = hook
			ecfg.Partition = fixedOwner(owner)
			ecfg.Mode = d.Plan.DirectionMode()
			ecfg.FCSThreshold = d.Plan.FCS
			if !cfg.NoCombiner {
				ecfg.Combiner = func(a, b float64) float64 { return a + b }
			}
			prog := &prProgram{n: n, alpha: alpha, k: remaining, seed: seed}
			res, err := pregel.NewEngine[prValue, float64](g, prog, ecfg).Run()
			var vals []float64
			var st *bsp.Stats
			if res != nil {
				vals = make([]float64, n)
				for v, val := range res.Values {
					vals[v] = val.rank
				}
				st = res.Stats
				if steps := st.NumSupersteps(); steps > 0 {
					done += steps - 1
				}
			}
			return vals, st, err
		case plan.EngineGAS:
			gcfg := gas.Config{
				Workers: workers, MaxIterations: cfg.MaxSupersteps,
				Partition: fixedOwner(owner), Snapshot: csr, Replan: hook,
				Mode: d.Plan.DirectionMode(), PullThreshold: cfg.PullThreshold,
				CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults,
				Ctx: cfg.Ctx, Pool: cfg.Pool, Job: cfg.Job,
			}
			prog := gas.PageRankFixedK(n, remaining, alpha, seed)
			res, err := gas.Prepare[float64, float64](g, prog, gcfg)()
			var vals []float64
			var st *bsp.Stats
			if res != nil {
				vals, st = res.Values, res.Stats
				done += st.NumSupersteps()
			}
			return vals, st, err
		case plan.EngineBlockcentric:
			bcfg := blockcentric.Config{
				Blocks: workers, MaxSupersteps: cfg.MaxSupersteps,
				Partition: fixedOwner(owner), Snapshot: csr, Replan: hook,
				// The canonical program's fold order matches pregel only
				// when every share crosses the inbox: pin push.
				Mode:            runtime.DirectionPush,
				CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults,
				Ctx: cfg.Ctx, Pool: cfg.Pool, Job: cfg.Job,
			}
			prog := blockcentric.PageRankProgramCanonical(n, remaining, alpha, seed)
			res, err := blockcentric.NewEngine[float64, float64](g, prog, bcfg).Run()
			var vals []float64
			var st *bsp.Stats
			if res != nil {
				vals, st = res.Values, res.Stats
				if steps := st.NumSupersteps(); steps > 0 {
					done += steps - 1
				}
			}
			return vals, st, err
		default:
			// Gauss-Seidel over live values has no notion of a global
			// iterate, so fixed-K PageRank cannot run asynchronously.
			return nil, nil, fmt.Errorf("plan: engine %q cannot run fixed-K pagerank", d.Plan.Engine)
		}
	}
	return func() (*PageRankResult, *AutoResult, error) {
		defer g.Unpin(csr)
		vals, ar, err := runAuto[float64](cfg, gs, caps, run)
		if err != nil {
			return nil, ar, err
		}
		return &PageRankResult{Ranks: vals, Stats: ar.Stats}, ar, nil
	}
}

// --- auto connected components ---

// HashMinCCAuto runs connected components under the adaptive plan
// layer.
func HashMinCCAuto(g *graph.Graph, cfg AutoConfig) (*CCResult, *AutoResult, error) {
	return PrepareAutoHashMinCC(g, cfg)()
}

// PrepareAutoHashMinCC is the job-scoped form of HashMinCCAuto.
func PrepareAutoHashMinCC(g *graph.Graph, cfg AutoConfig) func() (*CCResult, *AutoResult, error) {
	csr := g.Pin()
	workers := autoWorkers(cfg.Config)
	n := csr.N()
	gs := plan.Sample(csr, workers)
	caps := plan.Caps{Algorithm: "cc", HasCombiner: !cfg.NoCombiner, Workers: workers}
	run := func(d plan.Decision, seed []VertexID, hook func(int, int) bool) ([]VertexID, *bsp.Stats, error) {
		owner := d.Plan.Owner(csr, workers)
		switch d.Plan.Engine {
		case plan.EnginePregel:
			ecfg := engineCfg[VertexID](cfg.Config)
			ecfg.Workers = workers
			ecfg.Snapshot = csr
			ecfg.Replan = hook
			ecfg.Partition = fixedOwner(owner)
			ecfg.Mode = d.Plan.DirectionMode()
			ecfg.FCSThreshold = d.Plan.FCS
			if !cfg.NoCombiner {
				ecfg.Combiner = func(a, b VertexID) VertexID {
					if a < b {
						return a
					}
					return b
				}
			}
			res, err := pregel.NewEngine[hashMinValue, VertexID](g, hashMinProgram{seed: seed}, ecfg).Run()
			var vals []VertexID
			var st *bsp.Stats
			if res != nil {
				vals = make([]VertexID, n)
				for v, val := range res.Values {
					vals[v] = val.min
				}
				st = res.Stats
			}
			return vals, st, err
		case plan.EngineGAS:
			gcfg := gas.Config{
				Workers: workers, MaxIterations: cfg.MaxSupersteps,
				Partition: fixedOwner(owner), Snapshot: csr, Replan: hook,
				Mode: d.Plan.DirectionMode(), PullThreshold: cfg.PullThreshold,
				CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults,
				Ctx: cfg.Ctx, Pool: cfg.Pool, Job: cfg.Job,
			}
			res, err := gas.Prepare[VertexID, VertexID](g, gas.CCProgramSeeded(seed), gcfg)()
			var vals []VertexID
			var st *bsp.Stats
			if res != nil {
				vals, st = res.Values, res.Stats
			}
			return vals, st, err
		case plan.EngineBlockcentric:
			bcfg := blockcentric.Config{
				Blocks: workers, MaxSupersteps: cfg.MaxSupersteps,
				Partition: fixedOwner(owner), Snapshot: csr, Replan: hook,
				Mode:            d.Plan.DirectionMode(),
				CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults,
				Ctx: cfg.Ctx, Pool: cfg.Pool, Job: cfg.Job,
			}
			res, err := blockcentric.NewEngine[VertexID, VertexID](g, blockcentric.CCProgramSeeded(seed), bcfg).Run()
			var vals []VertexID
			var st *bsp.Stats
			if res != nil {
				vals, st = res.Values, res.Stats
			}
			return vals, st, err
		case plan.EngineAsync:
			if cfg.Job != nil && workers != 1 {
				return nil, nil, fmt.Errorf("plan: async engine is sequential; job worker share is %d", workers)
			}
			acfg := async.Config{
				Snapshot: csr, Replan: hook,
				CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults,
				Ctx: cfg.Ctx, Pool: cfg.Pool, Job: cfg.Job,
			}
			res, err := async.Prepare[VertexID](g, async.CCProgramSeeded(seed), acfg)()
			var vals []VertexID
			var st *bsp.Stats
			if res != nil {
				vals, st = res.Values, res.Stats
			}
			return vals, st, err
		default:
			return nil, nil, fmt.Errorf("plan: unknown engine %q", d.Plan.Engine)
		}
	}
	return func() (*CCResult, *AutoResult, error) {
		defer g.Unpin(csr)
		vals, ar, err := runAuto[VertexID](cfg, gs, caps, run)
		if err != nil {
			return nil, ar, err
		}
		return &CCResult{Color: vals, Stats: ar.Stats}, ar, nil
	}
}

// --- auto single-source shortest paths ---

// SSSPAuto runs single-source shortest paths under the adaptive plan
// layer.
func SSSPAuto(g *graph.Graph, src VertexID, cfg AutoConfig) (*SSSPResult, *AutoResult, error) {
	return PrepareAutoSSSP(g, src, cfg)()
}

// PrepareAutoSSSP is the job-scoped form of SSSPAuto.
func PrepareAutoSSSP(g *graph.Graph, src VertexID, cfg AutoConfig) func() (*SSSPResult, *AutoResult, error) {
	csr := g.Pin()
	workers := autoWorkers(cfg.Config)
	n := csr.N()
	gs := plan.Sample(csr, workers)
	caps := plan.Caps{Algorithm: "sssp", HasCombiner: !cfg.NoCombiner, Workers: workers}
	run := func(d plan.Decision, seed []float64, hook func(int, int) bool) ([]float64, *bsp.Stats, error) {
		owner := d.Plan.Owner(csr, workers)
		switch d.Plan.Engine {
		case plan.EnginePregel:
			ecfg := engineCfg[float64](cfg.Config)
			ecfg.Workers = workers
			ecfg.Snapshot = csr
			ecfg.Replan = hook
			ecfg.Partition = fixedOwner(owner)
			// SSSP sends a distinct distance per edge; the pull path
			// never applies (see PrepareSSSP).
			ecfg.Mode = runtime.DirectionPush
			ecfg.FCSThreshold = d.Plan.FCS
			if !cfg.NoCombiner {
				ecfg.Combiner = func(a, b float64) float64 {
					if a < b {
						return a
					}
					return b
				}
			}
			res, err := pregel.NewEngine[ssspValue, float64](g, &ssspProgram{src: src, seed: seed}, ecfg).Run()
			var vals []float64
			var st *bsp.Stats
			if res != nil {
				vals = make([]float64, n)
				for v, val := range res.Values {
					vals[v] = val.dist
				}
				st = res.Stats
			}
			return vals, st, err
		case plan.EngineGAS:
			gcfg := gas.Config{
				Workers: workers, MaxIterations: cfg.MaxSupersteps,
				Partition: fixedOwner(owner), Snapshot: csr, Replan: hook,
				Mode: d.Plan.DirectionMode(), PullThreshold: cfg.PullThreshold,
				CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults,
				Ctx: cfg.Ctx, Pool: cfg.Pool, Job: cfg.Job,
			}
			res, err := gas.Prepare[float64, float64](g, gas.SSSPProgramSeeded(src, seed), gcfg)()
			var vals []float64
			var st *bsp.Stats
			if res != nil {
				vals, st = res.Values, res.Stats
			}
			return vals, st, err
		case plan.EngineBlockcentric:
			bcfg := blockcentric.Config{
				Blocks: workers, MaxSupersteps: cfg.MaxSupersteps,
				Partition: fixedOwner(owner), Snapshot: csr, Replan: hook,
				Mode:            d.Plan.DirectionMode(),
				CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults,
				Ctx: cfg.Ctx, Pool: cfg.Pool, Job: cfg.Job,
			}
			res, err := blockcentric.NewEngine[float64, float64](g, blockcentric.SSSPProgramSeeded(src, seed), bcfg).Run()
			var vals []float64
			var st *bsp.Stats
			if res != nil {
				vals, st = res.Values, res.Stats
			}
			return vals, st, err
		case plan.EngineAsync:
			if cfg.Job != nil && workers != 1 {
				return nil, nil, fmt.Errorf("plan: async engine is sequential; job worker share is %d", workers)
			}
			// The async SSSP program uses a finite sentinel instead of
			// +Inf so its priority arithmetic stays ordered; normalize
			// at both boundaries so the other engines (and callers)
			// always see +Inf.
			if seed != nil {
				ns := make([]float64, len(seed))
				for i, v := range seed {
					if math.IsInf(v, 1) {
						v = async.DistInf
					}
					ns[i] = v
				}
				seed = ns
			}
			acfg := async.Config{
				Snapshot: csr, Replan: hook,
				CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults,
				Ctx: cfg.Ctx, Pool: cfg.Pool, Job: cfg.Job,
			}
			res, err := async.Prepare[float64](g, async.SSSPProgramSeeded(src, seed), acfg)()
			var vals []float64
			var st *bsp.Stats
			if res != nil {
				vals = make([]float64, len(res.Values))
				for i, v := range res.Values {
					if v == async.DistInf {
						v = math.Inf(1)
					}
					vals[i] = v
				}
				st = res.Stats
			}
			return vals, st, err
		default:
			return nil, nil, fmt.Errorf("plan: unknown engine %q", d.Plan.Engine)
		}
	}
	return func() (*SSSPResult, *AutoResult, error) {
		defer g.Unpin(csr)
		vals, ar, err := runAuto[float64](cfg, gs, caps, run)
		if err != nil {
			return nil, ar, err
		}
		return &SSSPResult{Dist: vals, Stats: ar.Stats}, ar, nil
	}
}
