package vc

import (
	"testing"

	"vcgraph/internal/graph"
)

// Degenerate-input robustness: every algorithm must handle empty,
// single-vertex, and two-vertex graphs without panicking and with
// sensible results.

func tiny() map[string]*graph.Graph {
	pair := graph.Path(2)
	return map[string]*graph.Graph{
		"empty":     graph.New(0, false),
		"singleton": graph.New(1, false),
		"pair":      pair,
		"isolated3": graph.New(3, false),
	}
}

func tinyDirected() map[string]*graph.Graph {
	pair := graph.New(2, true)
	pair.AddEdge(0, 1)
	pair.EnsureIn()
	return map[string]*graph.Graph{
		"empty":     graph.New(0, true),
		"singleton": graph.New(1, true),
		"pair":      pair,
	}
}

func TestDegenerateUndirectedInputs(t *testing.T) {
	for name, g := range tiny() {
		g := g
		t.Run(name, func(t *testing.T) {
			if _, err := PageRank(g, 0.85, 5, Config{}); err != nil {
				t.Fatalf("pagerank: %v", err)
			}
			if _, err := HashMinCC(g, Config{}); err != nil {
				t.Fatalf("hashmin: %v", err)
			}
			if _, err := SVCC(g, Config{}); err != nil {
				t.Fatalf("sv: %v", err)
			}
			if _, err := Diameter(g, Config{}); err != nil {
				t.Fatalf("diameter: %v", err)
			}
			if _, err := ColoringMIS(g, Config{}); err != nil {
				t.Fatalf("coloring: %v", err)
			}
			if _, err := MaximalIndependentSet(g, Config{}); err != nil {
				t.Fatalf("mis: %v", err)
			}
			if _, err := MaxWeightMatching(g, Config{}); err != nil {
				t.Fatalf("matching: %v", err)
			}
			if _, err := MCST(g, Config{}); err != nil {
				t.Fatalf("mcst: %v", err)
			}
			if _, err := KCore(g, Config{}); err != nil {
				t.Fatalf("kcore: %v", err)
			}
			if _, err := Triangles(g, Config{}); err != nil {
				t.Fatalf("triangles: %v", err)
			}
			if _, err := LabelPropagation(g, 4, Config{}); err != nil {
				t.Fatalf("lpa: %v", err)
			}
			if _, err := DoubleSweepDiameter(g, graph.NoVertex, Config{}); err != nil {
				t.Fatalf("doublesweep: %v", err)
			}
			if _, err := SemiClustering(g, SemiClusterConfig{Iterations: 2}, Config{}); err != nil {
				t.Fatalf("semicluster: %v", err)
			}
			if g.N() > 0 {
				if _, err := SSSP(g, 0, Config{}); err != nil {
					t.Fatalf("sssp: %v", err)
				}
				if _, err := Betweenness(g, []VertexID{0}, Config{}); err != nil {
					t.Fatalf("betweenness: %v", err)
				}
			}
		})
	}
}

func TestDegenerateDirectedInputs(t *testing.T) {
	for name, g := range tinyDirected() {
		g := g
		t.Run(name, func(t *testing.T) {
			if _, err := SCC(g, Config{}); err != nil {
				t.Fatalf("scc: %v", err)
			}
			if _, err := WCC(g, Config{}); err != nil {
				t.Fatalf("wcc: %v", err)
			}
			q := graph.New(1, true)
			q.Labels = []string{"A"}
			q.EnsureIn()
			if g.Labels == nil {
				g.Labels = make([]string, g.N())
			}
			if _, err := GraphSimulation(g, q, Config{}); err != nil {
				t.Fatalf("simulation: %v", err)
			}
			if _, err := DualSimulation(g, q, Config{}); err != nil {
				t.Fatalf("dualsim: %v", err)
			}
			if _, err := StrongSimulation(g, q, Config{}); err != nil {
				t.Fatalf("strongsim: %v", err)
			}
		})
	}
}

func TestDegenerateResultsAreSane(t *testing.T) {
	g := graph.Path(2)
	d, err := Diameter(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Diameter != 1 {
		t.Fatalf("P2 diameter %d", d.Diameter)
	}
	m, err := MCST(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Edges) != 1 {
		t.Fatalf("P2 MST edges %d", len(m.Edges))
	}
	kc, err := KCore(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if kc.Core[0] != 1 || kc.Core[1] != 1 {
		t.Fatalf("P2 coreness %v", kc.Core)
	}
	sc, err := SemiClustering(g, SemiClusterConfig{Iterations: 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Top) == 0 {
		t.Fatal("no clusters on P2")
	}
}

func TestSingleVertexTreePipelines(t *testing.T) {
	g := graph.New(1, false)
	tr, err := PrePostOrder(g, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Pre[0] != 0 || tr.Post[0] != 0 {
		t.Fatalf("pre/post = %d/%d", tr.Pre[0], tr.Post[0])
	}
	et, err := EulerTour(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(et.Walk(g, 0)) != 0 {
		t.Fatal("non-empty tour on single vertex")
	}
}

func TestBCCTinyConnected(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		g := graph.Path(n)
		res, err := BCC(g, Config{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(res.EdgeComp) != g.M() {
			t.Fatalf("n=%d: %d labels for %d edges", n, len(res.EdgeComp), g.M())
		}
	}
}
