package vc

import (
	"math"
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

// --- SCC ---

func TestSCCMatchesTarjan(t *testing.T) {
	cases := map[string]*graph.Graph{
		"random-dense":  graph.RandomDirected(120, 700, 3),
		"random-sparse": graph.RandomDirected(150, 200, 4),
		"two-cycles": func() *graph.Graph {
			g := graph.New(6, true)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(2, 0)
			g.AddEdge(3, 4)
			g.AddEdge(4, 5)
			g.AddEdge(5, 3)
			g.AddEdge(2, 3) // bridge between the cycles
			g.EnsureIn()
			return g
		}(),
		"dag": func() *graph.Graph {
			g := graph.New(8, true)
			for i := 0; i < 7; i++ {
				g.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
			}
			g.EnsureIn()
			return g
		}(),
		"self-loops-only": graph.New(5, true),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			res, err := SCC(g, Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			var ops seq.Ops
			want := seq.SCC(g, &ops)
			for v := range want {
				if res.Comp[v] != want[v] {
					t.Fatalf("vertex %d: vc=%d tarjan=%d", v, res.Comp[v], want[v])
				}
			}
		})
	}
}

func TestSCCRejectsUndirected(t *testing.T) {
	if _, err := SCC(graph.Path(4), Config{}); err == nil {
		t.Fatal("expected error on undirected input")
	}
}

func TestSCCQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomDirected(60, 240, seed)
		res, err := SCC(g, Config{Workers: 3})
		if err != nil {
			return false
		}
		var ops seq.Ops
		want := seq.SCC(g, &ops)
		for v := range want {
			if res.Comp[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- MCST ---

func TestMCSTMatchesKruskalUniqueWeights(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		g := graph.RandomConnected(120, 400, seed)
		graph.RandomWeights(g, seed+50) // distinct weights: unique MST
		res, err := MCST(g, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		var ops seq.Ops
		want, wantW := seq.MSTKruskal(g, &ops)
		if len(res.Edges) != len(want) {
			t.Fatalf("seed %d: %d edges, want %d", seed, len(res.Edges), len(want))
		}
		for i := range want {
			if res.Edges[i].U != want[i].U || res.Edges[i].V != want[i].V {
				t.Fatalf("seed %d edge %d: vc=(%d,%d) kruskal=(%d,%d)",
					seed, i, res.Edges[i].U, res.Edges[i].V, want[i].U, want[i].V)
			}
		}
		if !almostEqual(res.Weight, wantW, 1e-12) {
			t.Fatalf("seed %d: weight %v, want %v", seed, res.Weight, wantW)
		}
	}
}

func TestMCSTPrimAgreesWithKruskal(t *testing.T) {
	g := graph.RandomConnected(200, 600, 9)
	graph.RandomWeights(g, 77)
	var ops1, ops2 seq.Ops
	_, w1 := seq.MSTPrim(g, &ops1)
	_, w2 := seq.MSTKruskal(g, &ops2)
	if !almostEqual(w1, w2, 1e-12) {
		t.Fatalf("prim=%v kruskal=%v", w1, w2)
	}
}

func TestMCSTEqualWeights(t *testing.T) {
	// All weights 1: any spanning tree is minimum; verify size & weight.
	g := graph.RandomConnected(80, 200, 6)
	res, err := MCST(g, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != g.N()-1 {
		t.Fatalf("%d edges, want %d", len(res.Edges), g.N()-1)
	}
	if !almostEqual(res.Weight, float64(g.N()-1), 1e-12) {
		t.Fatalf("weight %v, want %v", res.Weight, float64(g.N()-1))
	}
	uf := seq.NewUnionFind(g.N())
	for _, e := range res.Edges {
		if !uf.Union(e.U, e.V) {
			t.Fatalf("edge (%d,%d) closes a cycle", e.U, e.V)
		}
	}
}

func TestMCSTDisconnected(t *testing.T) {
	g := graph.Random(100, 80, 5) // sparse: many components
	graph.RandomWeights(g, 17)
	res, err := MCST(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	want, wantW := seq.MSTKruskal(g, &ops)
	if len(res.Edges) != len(want) || !almostEqual(res.Weight, wantW, 1e-12) {
		t.Fatalf("forest: got %d edges weight %v, want %d weight %v",
			len(res.Edges), res.Weight, len(want), wantW)
	}
}

func TestMCSTQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(50, 120, seed)
		graph.RandomWeights(g, seed*3+1)
		res, err := MCST(g, Config{Workers: 2})
		if err != nil {
			return false
		}
		var ops seq.Ops
		_, wantW := seq.MSTKruskal(g, &ops)
		return almostEqual(res.Weight, wantW, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMCSTSuperstepGrowthLogarithmic(t *testing.T) {
	mk := func(n int, seed int64) *graph.Graph {
		g := graph.RandomConnected(n, 3*n, seed)
		graph.RandomWeights(g, seed+1)
		return g
	}
	small, err := MCST(mk(64, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := MCST(mk(1024, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(large.Stats.NumSupersteps()) / float64(small.Stats.NumSupersteps())
	if ratio > math.Log2(1024)/math.Log2(64)*2.5 {
		t.Fatalf("supersteps grew %vx (%d -> %d), want polylog",
			ratio, small.Stats.NumSupersteps(), large.Stats.NumSupersteps())
	}
}
