package vc

import (
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

// --- Standalone MIS ---

func TestMISIsMaximalIndependent(t *testing.T) {
	cases := map[string]*graph.Graph{
		"random":   graph.Random(200, 600, 3),
		"path":     graph.Path(50),
		"complete": graph.Complete(12),
		"star":     graph.Star(30),
		"isolated": graph.New(10, false),
		"cycle":    graph.Cycle(17),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			res, err := MaximalIndependentSet(g, Config{Workers: 4, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			active := make([]bool, g.N())
			for i := range active {
				active[i] = true
			}
			if !seq.IsMIS(g, active, res.InSet) {
				t.Fatal("not a maximal independent set")
			}
		})
	}
}

func TestMISCompleteGraphPicksOne(t *testing.T) {
	res, err := MaximalIndependentSet(graph.Complete(20), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 1 {
		t.Fatalf("MIS of K20 has size %d", res.Size)
	}
}

func TestMISQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(60, 150, seed)
		res, err := MaximalIndependentSet(g, Config{Workers: 2, Seed: seed})
		if err != nil {
			return false
		}
		active := make([]bool, g.N())
		for i := range active {
			active[i] = true
		}
		return seq.IsMIS(g, active, res.InSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMISDeterministicAcrossWorkers(t *testing.T) {
	g := graph.Random(150, 400, 9)
	a, err := MaximalIndependentSet(g, Config{Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaximalIndependentSet(g, Config{Workers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatalf("vertex %d differs across worker counts", v)
		}
	}
}

// --- Double-sweep diameter ---

func TestDoubleSweepExactOnTrees(t *testing.T) {
	// Double sweep is exact on trees.
	f := func(seed int64) bool {
		tr := graph.RandomTree(80, seed)
		ds, err := DoubleSweepDiameter(tr, graph.NoVertex, Config{Workers: 3})
		if err != nil {
			return false
		}
		var ops seq.Ops
		return ds.LowerBound == seq.Diameter(tr, &ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleSweepIsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(70, 200, seed)
		ds, err := DoubleSweepDiameter(g, graph.NoVertex, Config{Workers: 2})
		if err != nil {
			return false
		}
		var ops seq.Ops
		exact := seq.Diameter(g, &ops)
		// Lower bound, and the witness path length is consistent.
		return ds.LowerBound <= exact && ds.LowerBound >= exact/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleSweepCheaperThanExact(t *testing.T) {
	g := graph.RandomConnected(400, 1200, 4)
	ds, err := DoubleSweepDiameter(g, graph.NoVertex, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Diameter(g, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ds.LowerBound > exact.Diameter {
		t.Fatalf("lower bound %d exceeds exact %d", ds.LowerBound, exact.Diameter)
	}
	if ds.Stats.TotalMessages*10 > exact.Stats.TotalMessages {
		t.Fatalf("double sweep messages %d vs exact %d: expected >10x cheaper",
			ds.Stats.TotalMessages, exact.Stats.TotalMessages)
	}
}

func TestDoubleSweepPathEndpoints(t *testing.T) {
	ds, err := DoubleSweepDiameter(graph.Path(40), 20, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.LowerBound != 39 {
		t.Fatalf("bound %d, want 39", ds.LowerBound)
	}
	if !(ds.From == 0 && ds.To == 39) && !(ds.From == 39 && ds.To == 0) {
		t.Fatalf("endpoints %d-%d", ds.From, ds.To)
	}
}

func TestDoubleSweepEmptyGraph(t *testing.T) {
	ds, err := DoubleSweepDiameter(graph.New(0, false), graph.NoVertex, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.LowerBound != 0 {
		t.Fatalf("bound %d", ds.LowerBound)
	}
}
