package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// DiameterResult holds the output of the eccentricity-flooding
// algorithm of Pennycuff & Weninger (Table 1 rows 1 and 17): exact
// eccentricities, the graph diameter, and — as a byproduct — all-pair
// shortest path distances in the unweighted graph.
type DiameterResult struct {
	Ecc      []int32
	Diameter int32
	// Dist[v][u] is the hop distance from u to v (-1 if unreachable);
	// this is the APSP matrix of row 17.
	Dist  [][]int32
	Stats *bsp.Stats
}

type diamValue struct {
	dist []int32 // per-origin distance; -1 = origin not seen (the "history")
	seen int64   // |history|, tracked incrementally for O(1) state reports
	ecc  int32
}

type diamProgram struct{ n int }

func (p *diamProgram) Init(g *graph.Graph, id VertexID) diamValue {
	dist := make([]int32, p.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[id] = 0
	return diamValue{dist: dist, seen: 1}
}

func (p *diamProgram) Compute(ctx *pregel.Context[diamValue, VertexID], msgs []VertexID) {
	v := ctx.Value()
	s := int32(ctx.Superstep())
	if s == 0 {
		// Originate this vertex's unique message.
		ctx.SendToNeighbors(ctx.ID())
		ctx.VoteToHalt()
		return
	}
	var fresh []VertexID
	for _, origin := range msgs {
		if v.dist[origin] == -1 {
			v.dist[origin] = s
			v.seen++
			v.ecc = s
			fresh = append(fresh, origin)
		}
	}
	if len(fresh) > 0 {
		for _, e := range ctx.OutEdges() {
			for _, origin := range fresh {
				ctx.SendTo(e.Dst, origin)
			}
		}
		ctx.Aggregate("ecc", int64(v.ecc))
	}
	ctx.VoteToHalt()
}

func (p *diamProgram) StateUnits(v *diamValue) int64 { return v.seen }

// Diameter runs the vertex-centric exact diameter algorithm: every
// vertex floods its ID, keeps a history of seen origins, and records
// the superstep of first arrival as the distance. The graph diameter
// equals the number of supersteps minus one (the final superstep
// delivers nothing new). Memory is Θ(n) per vertex — the algorithm is
// deliberately not BPPA, as the paper observes.
func Diameter(g *graph.Graph, cfg Config) (*DiameterResult, error) {
	prog := &diamProgram{n: g.N()}
	eng := pregel.NewEngine[diamValue, VertexID](g, prog, engineCfg[VertexID](cfg))
	eng.RegisterAggregator("ecc", pregel.MaxInt64())
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &DiameterResult{
		Ecc:   make([]int32, g.N()),
		Dist:  make([][]int32, g.N()),
		Stats: res.Stats,
	}
	for v, val := range res.Values {
		out.Ecc[v] = val.ecc
		out.Dist[v] = val.dist
		if val.ecc > out.Diameter {
			out.Diameter = val.ecc
		}
	}
	return out, nil
}
