package vc

import "vcgraph/internal/runtime"

// Small-domain vertex-state storage, the algorithm-facing surface of
// the memory-lean substrate: a CC label is one of n values, a coreness
// estimate is bounded by the maximum degree, a color by Δ+1, so a flat
// array wastes most of its bits. The implementation lives in
// internal/runtime (engines need it without importing this package,
// which sits above them); these aliases make vc the canonical name for
// algorithm code and tests.

// StateStore is a fixed-length array of small unsigned integers (see
// runtime.StateStore).
type StateStore = runtime.StateStore

// DenseStore is the flat 8-byte reference implementation.
type DenseStore = runtime.DenseStore

// PackedInts is the bit-packed implementation: ⌈log₂ domain⌉ bits per
// entry, atomic word-level access.
type PackedInts = runtime.PackedInts

// NewDenseStore returns a flat store of n zero entries.
func NewDenseStore(n int) *DenseStore { return runtime.NewDenseStore(n) }

// NewPackedInts returns a packed store of n zero entries over
// [0, domain).
func NewPackedInts(n int, domain uint64) *PackedInts { return runtime.NewPackedInts(n, domain) }

// NewStateStore returns a store for n entries over [0, domain): a
// bit-packed store when packed is set, the flat reference store
// otherwise.
func NewStateStore(packed bool, n int, domain uint64) StateStore {
	return runtime.NewStateStore(packed, n, domain)
}
