package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// PageRankResult holds the vertex-centric PageRank output.
type PageRankResult struct {
	Ranks []float64
	Stats *bsp.Stats
}

type prValue struct{ rank float64 }

type prProgram struct {
	n     int
	alpha float64
	k     int // number of rank-update iterations
	// seed warm-starts the run from exported ranks (adaptive plan
	// layer handoff); nil means the uniform 1/n cold start. Compute is
	// untouched, so a resumed segment is bit-identical to the suffix
	// of an unswitched run.
	seed []float64
}

func (p *prProgram) Init(g *graph.Graph, id VertexID) prValue {
	if p.seed != nil {
		return prValue{rank: p.seed[id]}
	}
	return prValue{rank: 1 / float64(p.n)}
}

func (p *prProgram) Compute(ctx *pregel.Context[prValue, float64], msgs []float64) {
	s := ctx.Superstep()
	if s > 0 {
		var sum float64
		for _, m := range msgs {
			sum += m
		}
		ctx.Value().rank = (1-p.alpha)/float64(p.n) + p.alpha*sum
	}
	if s < p.k {
		if d := ctx.OutDegree(); d > 0 {
			share := ctx.Value().rank / float64(d)
			ctx.SendToNeighbors(share)
		}
		return
	}
	ctx.VoteToHalt()
}

func (p *prProgram) StateUnits(v *prValue) int64 { return 1 }

// prConvergeProgram runs PageRank until the aggregated L1 rank change
// drops below eps — the "until convergence" variant the paper's row 2
// refers to when it calls K the number of supersteps to convergence.
type prConvergeProgram struct {
	n     int
	alpha float64
	eps   float64
	// master state
	iterations int
}

func (p *prConvergeProgram) Init(g *graph.Graph, id VertexID) prValue {
	return prValue{rank: 1 / float64(p.n)}
}

func (p *prConvergeProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	if mc.Superstep() > 1 {
		if delta, ok := mc.Agg("delta").(float64); ok && delta < p.eps {
			mc.Halt()
			return
		}
	}
	p.iterations = mc.Superstep()
}

func (p *prConvergeProgram) Compute(ctx *pregel.Context[prValue, float64], msgs []float64) {
	v := ctx.Value()
	if ctx.Superstep() > 0 {
		var sum float64
		for _, m := range msgs {
			sum += m
		}
		next := (1-p.alpha)/float64(p.n) + p.alpha*sum
		diff := next - v.rank
		if diff < 0 {
			diff = -diff
		}
		ctx.Aggregate("delta", diff)
		v.rank = next
	}
	if d := ctx.OutDegree(); d > 0 {
		ctx.SendToNeighbors(v.rank / float64(d))
	}
}

func (p *prConvergeProgram) StateUnits(v *prValue) int64 { return 1 }

// PageRankConverge iterates PageRank until the total L1 rank movement
// per superstep falls below eps, returning the ranks and the number of
// supersteps that took.
func PageRankConverge(g *graph.Graph, alpha, eps float64, cfg Config) (*PageRankResult, int, error) {
	prog := &prConvergeProgram{n: g.N(), alpha: alpha, eps: eps}
	eng := pregel.NewEngine[prValue, float64](g, prog, engineCfg[float64](cfg))
	eng.RegisterAggregator("delta", pregel.SumFloat64())
	res, err := eng.Run()
	if err != nil {
		return nil, 0, err
	}
	ranks := make([]float64, g.N())
	for v, val := range res.Values {
		ranks[v] = val.rank
	}
	return &PageRankResult{Ranks: ranks, Stats: res.Stats}, res.Supersteps, nil
}

// PageRank runs the Pregel-paper PageRank for k iterations with
// damping factor alpha (Table 1 row 2: O(mK) messages, balanced but
// not BPPA because K typically exceeds log n). The rank contributions
// sum through a combiner, which also makes every dense superstep
// pull-eligible; the pull gather folds contributions in push-identical
// order, so the ranks are bit-identical in either mode (see
// runtime.Gatherer).
func PageRank(g *graph.Graph, alpha float64, k int, cfg Config) (*PageRankResult, error) {
	return PreparePageRank(g, alpha, k, cfg)()
}

// PreparePageRank is the job-scoped form of PageRank: the engine is
// constructed (and the snapshot pinned) now, under whatever lock the
// caller holds; the returned closure runs lock-free.
func PreparePageRank(g *graph.Graph, alpha float64, k int, cfg Config) func() (*PageRankResult, error) {
	prog := &prProgram{n: g.N(), alpha: alpha, k: k}
	ecfg := engineCfg[float64](cfg)
	if !cfg.NoCombiner {
		ecfg.Combiner = func(a, b float64) float64 { return a + b }
	}
	eng := pregel.NewEngine[prValue, float64](g, prog, ecfg)
	return func() (*PageRankResult, error) {
		res, err := eng.Run()
		if err != nil {
			return nil, err
		}
		ranks := make([]float64, g.N())
		for v, val := range res.Values {
			ranks[v] = val.rank
		}
		return &PageRankResult{Ranks: ranks, Stats: res.Stats}, nil
	}
}
