package vc

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"vcgraph/internal/async"
	"vcgraph/internal/blockcentric"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	rt "vcgraph/internal/runtime"
)

// Differential mutation-script suite: seeded random insert/delete
// batches interleaved with queries. At every query point the
// incremental answer (warm-started from the previous query's state)
// must be byte-identical — values and verdicts — to a from-scratch run
// on the mutated graph, across the engine × partitioner × worker
// matrix, and must stay byte-identical when the incremental run itself
// executes under crash/rollback fault injection.
//
// CC and SSSP have schedule-free fixpoints, so every engine agrees on
// the exact floats (SSSP modulo the unreachable sentinel: the async
// engine and the incremental programs use 1e308 where the barrier
// engines use +Inf — both mean "unreachable" and the verdicts agree).
// PageRank's low bits are schedule-dependent, so its byte-identity
// baseline is the canonical memoized recompute (a cold incremental
// run), with a tolerance check against the barrier engines.

// scriptRig drives one mutation script: it owns the evolving graph and
// a live-edge list the generator draws delete targets from, so every
// generated batch is valid by construction.
type scriptRig struct {
	t    *testing.T
	g    *graph.Graph
	rng  *rand.Rand
	live [][3]float64 // {u, v, w}; a multiset snapshot of logical edges
	// mirror, when set, receives every batch the rig applies — a twin
	// graph evolving in lockstep (the packed-encoding differential).
	mirror *graph.Graph
}

func newScriptRig(t *testing.T, n, m int, seed int64) *scriptRig {
	g := graph.RandomConnected(n, m, seed)
	graph.RandomWeights(g, seed+1000)
	r := &scriptRig{t: t, g: g, rng: rand.New(rand.NewSource(seed))}
	c := g.Pin()
	defer g.Unpin(c)
	for u := 0; u < n; u++ {
		c.ForEachOut(VertexID(u), func(v VertexID, w float64) {
			if VertexID(u) <= v {
				r.live = append(r.live, [3]float64{float64(u), float64(v), w})
			}
		})
	}
	return r
}

// step applies one batch of k random mutations (inserts biased 55/45,
// deletes drawn from the live multiset so the batch always validates).
func (r *scriptRig) step(k int) {
	n := r.g.N()
	var muts []graph.Mutation
	for i := 0; i < k; i++ {
		if r.rng.Intn(100) < 55 || len(r.live) == 0 {
			u := VertexID(r.rng.Intn(n))
			v := VertexID(r.rng.Intn(n))
			if u == v {
				v = (v + 1) % VertexID(n)
			}
			w := 0.5 + 3*r.rng.Float64()
			muts = append(muts, graph.Mutation{Op: graph.InsertEdge, U: u, V: v, W: w})
			r.live = append(r.live, [3]float64{float64(u), float64(v), w})
		} else {
			j := r.rng.Intn(len(r.live))
			e := r.live[j]
			muts = append(muts, graph.Mutation{Op: graph.DeleteEdge, U: VertexID(e[0]), V: VertexID(e[1])})
			r.live = append(r.live[:j], r.live[j+1:]...)
		}
	}
	if _, err := r.g.ApplyMutations(muts); err != nil {
		r.t.Fatalf("ApplyMutations(%v): %v", muts, err)
	}
	if r.mirror != nil {
		if _, err := r.mirror.ApplyMutations(muts); err != nil {
			r.t.Fatalf("mirror ApplyMutations(%v): %v", muts, err)
		}
	}
}

// Verdict helpers mirroring internal/service's query output, so the
// suite proves verdict strings — not just raw values — are identical.

func prVerdictOf(ranks []float64) string {
	best, bestV := -1.0, 0
	for v, r := range ranks {
		if r > best {
			best, bestV = r, v
		}
	}
	return fmt.Sprintf("top vertex %d with rank %.6f", bestV, best)
}

func ssspVerdictOf(dist []float64, src VertexID) string {
	reached := 0
	for _, d := range dist {
		if d < 1e300 {
			reached++
		}
	}
	return fmt.Sprintf("%d vertices reachable from %d", reached, src)
}

func ccVerdictOf(labels []VertexID) string {
	set := make(map[VertexID]bool, 16)
	for _, l := range labels {
		set[l] = true
	}
	return fmt.Sprintf("%d components", len(set))
}

// scratchCell is one from-scratch engine configuration.
type scratchCell struct {
	name  string
	exact bool // distances byte-identical to the incremental run (same sentinel)
	cc    func(g *graph.Graph) ([]VertexID, error)
	sssp  func(g *graph.Graph, src VertexID) ([]float64, error)
}

func scratchMatrix() []scratchCell {
	var cells []scratchCell
	for _, p := range []struct {
		name string
		part pregel.Partitioner
	}{{"hash", nil}, {"range", pregel.PartitionRange}, {"degree", pregel.PartitionDegreeBalanced}} {
		for _, w := range []int{1, 3} {
			part, w := p.part, w
			cells = append(cells, scratchCell{
				name: fmt.Sprintf("pregel/%s/w%d", p.name, w),
				cc: func(g *graph.Graph) ([]VertexID, error) {
					res, err := HashMinCC(g, Config{Workers: w, Partition: part})
					if err != nil {
						return nil, err
					}
					return res.Color, nil
				},
				sssp: func(g *graph.Graph, src VertexID) ([]float64, error) {
					res, err := SSSP(g, src, Config{Workers: w, Partition: part})
					if err != nil {
						return nil, err
					}
					return res.Dist, nil
				},
			})
		}
	}
	for _, w := range []int{1, 2} {
		w := w
		cells = append(cells, scratchCell{
			name: fmt.Sprintf("gas/w%d", w),
			cc: func(g *graph.Graph) ([]VertexID, error) {
				labels, _, err := gas.ConnectedComponents(g, gas.Config{Workers: w})
				return labels, err
			},
			sssp: func(g *graph.Graph, src VertexID) ([]float64, error) {
				dist, _, err := gas.SSSP(g, src, gas.Config{Workers: w})
				return dist, err
			},
		})
	}
	cells = append(cells, scratchCell{
		name: "async", exact: true,
		cc: func(g *graph.Graph) ([]VertexID, error) {
			labels, _, err := async.ConnectedComponents(g, async.Config{})
			return labels, err
		},
		sssp: func(g *graph.Graph, src VertexID) ([]float64, error) {
			dist, _, err := async.SSSP(g, src, async.Config{})
			return dist, err
		},
	})
	for _, b := range []int{2, 3} {
		b := b
		cells = append(cells, scratchCell{
			name: fmt.Sprintf("blockcentric/b%d", b),
			cc: func(g *graph.Graph) ([]VertexID, error) {
				res, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: b})
				if err != nil {
					return nil, err
				}
				return res.Color, nil
			},
			sssp: func(g *graph.Graph, src VertexID) ([]float64, error) {
				res, err := blockcentric.SSSP(g, src, blockcentric.Config{Blocks: b})
				if err != nil {
					return nil, err
				}
				return res.Dist, nil
			},
		})
	}
	return cells
}

// checkSSSPAgainst compares an incremental distance vector with a
// from-scratch engine run: reachable values byte-identical; for engines
// with a different unreachable sentinel (+Inf vs 1e308), unreachability
// itself must agree.
func checkSSSPAgainst(t *testing.T, cell scratchCell, inc, scratch []float64) {
	t.Helper()
	if cell.exact {
		if !reflect.DeepEqual(inc, scratch) {
			t.Fatalf("%s: incremental SSSP differs from from-scratch run", cell.name)
		}
		return
	}
	if len(inc) != len(scratch) {
		t.Fatalf("%s: length mismatch", cell.name)
	}
	for v := range inc {
		iu, su := inc[v] >= 1e300, math.IsInf(scratch[v], 1)
		if iu != su {
			t.Fatalf("%s: vertex %d reachability differs: inc %v scratch %v", cell.name, v, inc[v], scratch[v])
		}
		if !iu && inc[v] != scratch[v] {
			t.Fatalf("%s: vertex %d dist %v != from-scratch %v", cell.name, v, inc[v], scratch[v])
		}
	}
}

// queryAll runs one query point: advance the incremental states and
// compare values + verdicts against the given from-scratch cells.
type incStates struct {
	cc   *IncCCState
	sssp *IncSSSPState
	pr   *IncPRState
}

const (
	scriptAlpha = 0.85
	scriptK     = 12
	scriptSrc   = VertexID(0)
)

func (st *incStates) query(t *testing.T, g *graph.Graph, cells []scratchCell, wantWarm bool, cfg IncConfig) {
	t.Helper()
	cc, _, err := IncrementalCC(g, st.cc, cfg)
	if err != nil {
		t.Fatalf("incremental CC: %v", err)
	}
	ss, _, err := IncrementalSSSP(g, scriptSrc, st.sssp, cfg)
	if err != nil {
		t.Fatalf("incremental SSSP: %v", err)
	}
	pr, _, err := IncrementalPageRank(g, scriptAlpha, scriptK, st.pr, cfg)
	if err != nil {
		t.Fatalf("incremental PageRank: %v", err)
	}
	if wantWarm && (cc.Cold || ss.Cold || pr.Cold) {
		t.Fatalf("expected warm runs: cc=%v sssp=%v pr=%v", cc.Cold, ss.Cold, pr.Cold)
	}
	st.cc, st.sssp, st.pr = cc, ss, pr

	for _, cell := range cells {
		labels, err := cell.cc(g)
		if err != nil {
			t.Fatalf("%s CC: %v", cell.name, err)
		}
		if !reflect.DeepEqual(cc.Labels, labels) {
			t.Fatalf("%s: incremental CC labels differ from from-scratch run", cell.name)
		}
		if iv, sv := ccVerdictOf(cc.Labels), ccVerdictOf(labels); iv != sv {
			t.Fatalf("%s: CC verdict %q != %q", cell.name, iv, sv)
		}
		dist, err := cell.sssp(g, scriptSrc)
		if err != nil {
			t.Fatalf("%s SSSP: %v", cell.name, err)
		}
		checkSSSPAgainst(t, cell, ss.Dist, dist)
		if iv, sv := ssspVerdictOf(ss.Dist, scriptSrc), ssspVerdictOf(dist, scriptSrc); iv != sv {
			t.Fatalf("%s: SSSP verdict %q != %q", cell.name, iv, sv)
		}
	}

	// PageRank byte-identity baseline: the canonical cold recompute.
	scratch, _, err := IncrementalPageRank(g, scriptAlpha, scriptK, nil, cfg)
	if err != nil {
		t.Fatalf("cold PageRank: %v", err)
	}
	if !reflect.DeepEqual(pr.Hist, scratch.Hist) {
		t.Fatal("incremental PageRank history differs from cold recompute")
	}
	if iv, sv := prVerdictOf(pr.Ranks()), prVerdictOf(scratch.Ranks()); iv != sv {
		t.Fatalf("PageRank verdict %q != %q", iv, sv)
	}
	// Cross-engine tolerance check (summation order differs).
	res, err := PageRank(g, scriptAlpha, scriptK, Config{Workers: 2})
	if err != nil {
		t.Fatalf("pregel PageRank: %v", err)
	}
	for v, r := range pr.Ranks() {
		if math.Abs(r-res.Ranks[v]) > 1e-9 {
			t.Fatalf("vertex %d: incremental rank %v vs pregel %v", v, r, res.Ranks[v])
		}
	}
}

// TestMutationScriptMatrix: a few scripts checked at every query point
// against the full engine × partitioner × worker matrix.
func TestMutationScriptMatrix(t *testing.T) {
	cells := scratchMatrix()
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rig := newScriptRig(t, 28, 56, seed)
			st := &incStates{}
			st.query(t, rig.g, cells, false, IncConfig{})
			for step := 1; step <= 9; step++ {
				rig.step(1 + rig.rng.Intn(5))
				if step%3 == 0 {
					st.query(t, rig.g, cells, true, IncConfig{})
				}
			}
		})
	}
}

// TestMutationScriptMany: one hundred seeded scripts with the cheap
// comparator (async engine — the byte-exact one — plus the canonical
// PageRank recompute) at every query point.
func TestMutationScriptMany(t *testing.T) {
	exact := []scratchCell{scratchMatrix()[8]} // async
	if exact[0].name != "async" || !exact[0].exact {
		t.Fatalf("matrix order changed: got %q", exact[0].name)
	}
	for seed := int64(1); seed <= 100; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rig := newScriptRig(t, 20, 40, seed)
			st := &incStates{}
			st.query(t, rig.g, exact, false, IncConfig{})
			for step := 1; step <= 6; step++ {
				rig.step(1 + rig.rng.Intn(4))
				if step%3 == 0 {
					st.query(t, rig.g, exact, true, IncConfig{})
				}
			}
		})
	}
}

// TestMutationScriptFaults: the incremental runs themselves execute
// under crash/rollback fault plans and must remain byte-identical to
// the fault-free incremental run (which the other suites tie to the
// from-scratch baseline).
func TestMutationScriptFaults(t *testing.T) {
	plans := []struct {
		name string
		ck   int
		plan func() *rt.FaultPlan
	}{
		{"crash-fresh", 0, func() *rt.FaultPlan { return rt.PlanOf(rt.Crash(1)) }},
		{"crash-checkpointed", 2, func() *rt.FaultPlan { return rt.PlanOf(rt.Crash(3)) }},
		{"drop-lane", 1, func() *rt.FaultPlan { return rt.PlanOf(rt.DropLane(1, 0, 0)) }},
		{"dup-lane", 0, func() *rt.FaultPlan { return rt.PlanOf(rt.DupLane(1, 0, 0)) }},
		{"corrupt-checkpoint", 1, func() *rt.FaultPlan { return rt.PlanOf(rt.CorruptCheckpoint(2), rt.Crash(3)) }},
		{"seeded", 2, func() *rt.FaultPlan { return rt.NewFaultPlan(7) }},
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rig := newScriptRig(t, 24, 48, seed)
			st := &incStates{}
			st.query(t, rig.g, nil, false, IncConfig{})
			for step := 1; step <= 6; step++ {
				rig.step(1 + rig.rng.Intn(4))
				if step%2 != 0 {
					continue
				}
				// Fault-free warm baselines from the current states.
				prior := *st
				st.query(t, rig.g, []scratchCell{scratchMatrix()[8]}, true, IncConfig{})
				for _, fp := range plans {
					fp := fp
					t.Run(fmt.Sprintf("step%d/%s", step, fp.name), func(t *testing.T) {
						cfg := IncConfig{CheckpointEvery: fp.ck, Faults: fp.plan()}
						cc, _, err := IncrementalCC(rig.g, prior.cc, cfg)
						if err != nil {
							t.Fatalf("faulted CC: %v", err)
						}
						if !reflect.DeepEqual(cc.Labels, st.cc.Labels) {
							t.Fatal("faulted incremental CC differs from fault-free run")
						}
						ss, _, err := IncrementalSSSP(rig.g, scriptSrc, prior.sssp, cfg)
						if err != nil {
							t.Fatalf("faulted SSSP: %v", err)
						}
						if !reflect.DeepEqual(ss.Dist, st.sssp.Dist) {
							t.Fatal("faulted incremental SSSP differs from fault-free run")
						}
						pr, _, err := IncrementalPageRank(rig.g, scriptAlpha, scriptK, prior.pr, cfg)
						if err != nil {
							t.Fatalf("faulted PageRank: %v", err)
						}
						if !reflect.DeepEqual(pr.Hist, st.pr.Hist) {
							t.Fatal("faulted incremental PageRank differs from fault-free run")
						}
					})
				}
			}
		})
	}
}

// TestMutationScriptFaultsFire: deterministic evidence that fault
// injection actually exercises recovery on incremental runs — a cold
// run spans many epochs, so a crash at epoch boundary 1 must roll back.
func TestMutationScriptFaultsFire(t *testing.T) {
	g := graph.RandomConnected(64, 128, 9)
	st, stats, err := IncrementalCC(g, nil, IncConfig{CheckpointEvery: 1, Faults: rt.PlanOf(rt.Crash(1))})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recovery.Rollbacks == 0 {
		t.Fatalf("crash plan fired no rollback: %+v", stats.Recovery)
	}
	if got := asyncCC(t, g); !reflect.DeepEqual(st.Labels, got) {
		t.Fatal("recovered cold CC differs from from-scratch run")
	}
	pr, prStats, err := IncrementalPageRank(g, 0.85, 10, nil, IncConfig{CheckpointEvery: 1, Faults: rt.PlanOf(rt.Crash(3))})
	if err != nil {
		t.Fatal(err)
	}
	if prStats.Recovery.Rollbacks == 0 {
		t.Fatalf("PageRank crash plan fired no rollback: %+v", prStats.Recovery)
	}
	scratch, _, err := IncrementalPageRank(g, 0.85, 10, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pr.Hist, scratch.Hist) {
		t.Fatal("recovered PageRank differs from fault-free run")
	}
}
