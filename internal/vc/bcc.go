package vc

import (
	"fmt"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Biconnected components (Table 1 row 5): the Tarjan–Vishkin
// construction as composed by Yan et al. from the library's other
// vertex-centric building blocks:
//
//  1. spanning tree by Shiloach–Vishkin (hook-edge recording),
//  2. rooting, preorder numbers and subtree sizes by the Euler-tour +
//     list-ranking pipeline of row 9,
//  3. low/high subtree extrema by message waves up the tree,
//  4. the Tarjan–Vishkin auxiliary graph over the tree edges, whose
//     connected components — found with Hash-Min — are exactly the
//     biconnected components of the input.
//
// Stage 3 propagates child reports up the tree in O(depth) supersteps
// (Tarjan–Vishkin do this with O(log n) tree contraction; the verdicts
// measured by the harness are unchanged — see DESIGN.md §5). Every
// stage's BSP statistics are merged into the result.

// BCCResult assigns a component label to every undirected edge
// (canonical U < V keys). Labels are arbitrary ints, consistent within
// a component.
type BCCResult struct {
	EdgeComp      map[[2]VertexID]int
	NumComponents int
	Stats         *bsp.Stats
}

const (
	bccPre int8 = iota
	bccReport
)

type bccMsg struct {
	Kind      int8
	From      VertexID
	Pre       int32
	Low, High int32
}

type bccValue struct {
	low, high int32
	pending   int // children yet to report
	reported  bool
}

// bccLowHigh is the stage-3 program: compute per-vertex bases from
// neighbor preorders, then wave (low, high) reports from the leaves up.
type bccLowHigh struct {
	pre      []int32
	parent   []VertexID
	children []int32 // number of tree children
	isTree   map[[2]VertexID]bool
}

func (p *bccLowHigh) Init(g *graph.Graph, id VertexID) bccValue {
	return bccValue{low: -1, high: -1}
}

func (p *bccLowHigh) treeEdge(a, b VertexID) bool {
	if a > b {
		a, b = b, a
	}
	return p.isTree[[2]VertexID{a, b}]
}

func (p *bccLowHigh) Compute(ctx *pregel.Context[bccValue, bccMsg], msgs []bccMsg) {
	v := ctx.Value()
	id := ctx.ID()
	switch ctx.Superstep() {
	case 0:
		ctx.SendToNeighbors(bccMsg{Kind: bccPre, From: id, Pre: p.pre[id]})
		return // stay active: leaves must fire at superstep 1 even without mail
	case 1:
		// Base: own preorder and the preorders across non-tree edges.
		v.low, v.high = p.pre[id], p.pre[id]
		for _, m := range msgs {
			if m.Kind != bccPre || p.treeEdge(id, m.From) {
				continue
			}
			if m.Pre < v.low {
				v.low = m.Pre
			}
			if m.Pre > v.high {
				v.high = m.Pre
			}
		}
		v.pending = int(p.children[id])
		if v.pending == 0 {
			p.report(ctx, v)
		}
		ctx.VoteToHalt()
	default:
		for _, m := range msgs {
			if m.Kind != bccReport {
				continue
			}
			if m.Low < v.low {
				v.low = m.Low
			}
			if m.High > v.high {
				v.high = m.High
			}
			v.pending--
		}
		if v.pending == 0 && !v.reported {
			p.report(ctx, v)
		}
		ctx.VoteToHalt()
	}
}

func (p *bccLowHigh) report(ctx *pregel.Context[bccValue, bccMsg], v *bccValue) {
	v.reported = true
	if par := p.parent[ctx.ID()]; par != graph.NoVertex {
		ctx.SendTo(par, bccMsg{Kind: bccReport, Low: v.low, High: v.high})
	}
}

func (p *bccLowHigh) StateUnits(v *bccValue) int64 { return 4 }

// BCC computes the biconnected components of a connected undirected
// graph. Self-loops are not supported (the generators never produce
// them).
func BCC(g *graph.Graph, cfg Config) (*BCCResult, error) {
	if g.Directed {
		return nil, fmt.Errorf("vc: BCC requires an undirected graph")
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("vc: BCC requires a connected graph")
	}
	n := g.N()
	if n <= 1 || g.M() == 0 {
		return &BCCResult{EdgeComp: map[[2]VertexID]int{}, Stats: &bsp.Stats{N: n}}, nil
	}

	// Stage 1: spanning tree.
	sv, err := SVCC(g, cfg)
	if err != nil {
		return nil, err
	}
	tree := graph.New(n, false)
	isTree := make(map[[2]VertexID]bool, len(sv.TreeEdges))
	for _, e := range sv.TreeEdges {
		tree.AddEdge(e.U, e.V)
		isTree[[2]VertexID{e.U, e.V}] = true
	}
	tree.SortAdjacency()

	// Stage 2: root at 0; preorder, subtree sizes, parents.
	en, err := eulerPipeline(tree, 0, cfg)
	if err != nil {
		return nil, err
	}

	// Stage 3: low/high by upward waves on the original graph.
	children := make([]int32, n)
	for v := 0; v < n; v++ {
		if par := en.parent[v]; par != graph.NoVertex {
			children[par]++
		}
	}
	lh := &bccLowHigh{pre: en.pre, parent: en.parent, children: children, isTree: isTree}
	eng := pregel.NewEngine[bccValue, bccMsg](g, lh, engineCfg[bccMsg](cfg))
	lhRes, err := eng.Run()
	if err != nil {
		return nil, err
	}
	low := make([]int32, n)
	high := make([]int32, n)
	for v, val := range lhRes.Values {
		low[v], high[v] = val.low, val.high
	}

	// Stage 4: Tarjan–Vishkin auxiliary graph on the n-1 tree edges,
	// identified by the child's preorder number minus one.
	byPre := make([]VertexID, n) // preorder number -> vertex
	for v := 0; v < n; v++ {
		byPre[en.pre[v]] = VertexID(v)
	}
	aux := graph.New(n-1, false)
	seen := make(map[[2]VertexID]bool)
	addAux := func(a, b int32) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		k := [2]VertexID{VertexID(a), VertexID(b)}
		if !seen[k] {
			seen[k] = true
			aux.AddEdge(VertexID(a), VertexID(b))
		}
	}
	for _, e := range g.UndirectedEdges() {
		if isTree[[2]VertexID{e.U, e.V}] {
			continue
		}
		// Rule (a): non-tree edge between unrelated vertices links the
		// tree edges above both endpoints.
		a, b := en.pre[e.U], en.pre[e.V]
		u := e.U
		if a > b {
			a, b = b, a
			u = e.V
		}
		if b >= a+en.nd[u] { // unrelated in preorder intervals
			addAux(a-1, b-1)
		}
	}
	for v := 0; v < n; v++ {
		w := en.parent[v]
		if w == graph.NoVertex || en.parent[w] == graph.NoVertex {
			continue // v is the root, or its parent is
		}
		// Rule (b): the tree edge (w,v) joins the tree edge above w iff
		// some non-tree edge escapes w's subtree from v's subtree.
		if low[v] < en.pre[w] || high[v] >= en.pre[w]+en.nd[w] {
			addAux(en.pre[w]-1, en.pre[v]-1)
		}
	}

	cc, err := HashMinCC(aux, cfg)
	if err != nil {
		return nil, err
	}

	// Label every input edge.
	out := &BCCResult{
		EdgeComp: make(map[[2]VertexID]int, g.M()),
		Stats:    MergeStats(sv.Stats, en.stats, lhRes.Stats, cc.Stats),
	}
	labelOf := make(map[VertexID]int)
	compOf := func(child VertexID) int {
		c := cc.Color[en.pre[child]-1]
		l, ok := labelOf[c]
		if !ok {
			l = out.NumComponents
			out.NumComponents++
			labelOf[c] = l
		}
		return l
	}
	for _, e := range g.UndirectedEdges() {
		key := [2]VertexID{e.U, e.V}
		if isTree[key] {
			child := e.U
			if en.parent[e.V] == e.U {
				child = e.V
			}
			out.EdgeComp[key] = compOf(child)
		} else {
			// Non-tree edge: same component as the tree edge above the
			// deeper (larger-preorder) endpoint.
			deeper := e.U
			if en.pre[e.V] > en.pre[e.U] {
				deeper = e.V
			}
			out.EdgeComp[key] = compOf(deeper)
		}
	}
	return out, nil
}
