package vc

import (
	"testing"

	"vcgraph/internal/blockcentric"
	"vcgraph/internal/bsp"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	"vcgraph/internal/runtime"
)

// Direction-optimizing execution equivalence: push, pull, and auto are
// three schedules of the SAME computation. The pull gather replays
// push's fold order exactly (per-source ascending within each owner
// worker, owners folded in worker order), so even float64 sums like
// PageRank's must come out bit-identical — not merely close. Mode may
// only change the wire-level accounting (Sent/Recv/TotalMessages and
// the Pulled marker): verdict-bearing outputs, superstep counts, and
// the per-superstep Work/Active loads must be byte-identical.

var directionModes = []struct {
	name string
	mode runtime.DirectionMode
}{
	{"push", runtime.DirectionPush},
	{"pull", runtime.DirectionPull},
	{"auto", runtime.DirectionAuto},
}

var directionCells = []struct {
	name    string
	workers int
	part    pregel.Partitioner
}{
	{"w1-hash", 1, pregel.PartitionHash},
	{"w2-range", 2, pregel.PartitionRange},
	{"w8-hash", 8, pregel.PartitionHash},
	{"w8-range", 8, pregel.PartitionRange},
}

// requireSameLoads asserts the per-superstep compute-side stats are
// identical: Work and Active per worker, superstep for superstep. Only
// the communication columns (Sent/Recv) may differ across modes.
func requireSameLoads(t *testing.T, base, got *bsp.Stats) {
	t.Helper()
	if len(base.Supersteps) != len(got.Supersteps) {
		t.Fatalf("superstep counts differ: %d vs %d", len(base.Supersteps), len(got.Supersteps))
	}
	for s := range base.Supersteps {
		b, g := base.Supersteps[s], got.Supersteps[s]
		for w := range b.Work {
			if b.Work[w] != g.Work[w] {
				t.Fatalf("superstep %d worker %d: work %d vs %d", s, w, b.Work[w], g.Work[w])
			}
			if b.Active[w] != g.Active[w] {
				t.Fatalf("superstep %d worker %d: active %d vs %d", s, w, b.Active[w], g.Active[w])
			}
		}
	}
	if base.TotalWork != got.TotalWork {
		t.Fatalf("total work differs: %d vs %d", base.TotalWork, got.TotalWork)
	}
}

func TestDirectionEquivalencePageRank(t *testing.T) {
	g := graph.PreferentialAttachment(800, 3, 5)
	for _, tc := range directionCells {
		t.Run(tc.name, func(t *testing.T) {
			var base *PageRankResult
			for _, dm := range directionModes {
				res, err := PageRank(g, 0.85, 20, Config{Workers: tc.workers, Partition: tc.part, Mode: dm.mode})
				if err != nil {
					t.Fatal(err)
				}
				if dm.mode == runtime.DirectionPull && res.Stats.PulledSupersteps() == 0 {
					t.Fatal("forced pull never pulled")
				}
				if base == nil {
					base = res
					continue
				}
				for v := range base.Ranks {
					// Bit-identical, not epsilon: the gather replays the
					// push fold order.
					if base.Ranks[v] != res.Ranks[v] {
						t.Fatalf("mode %s: rank differs at vertex %d: %v vs %v",
							dm.name, v, base.Ranks[v], res.Ranks[v])
					}
				}
				requireSameLoads(t, base.Stats, res.Stats)
			}
		})
	}
}

func TestDirectionEquivalenceHashMin(t *testing.T) {
	g := graph.WattsStrogatz(500, 2, 0.1, 9)
	for _, tc := range directionCells {
		t.Run(tc.name, func(t *testing.T) {
			var base *CCResult
			for _, dm := range directionModes {
				res, err := HashMinCC(g, Config{Workers: tc.workers, Partition: tc.part, Mode: dm.mode})
				if err != nil {
					t.Fatal(err)
				}
				if base == nil {
					base = res
					continue
				}
				for v := range base.Color {
					if base.Color[v] != res.Color[v] {
						t.Fatalf("mode %s: label differs at vertex %d", dm.name, v)
					}
				}
				requireSameLoads(t, base.Stats, res.Stats)
			}
		})
	}
}

func TestDirectionEquivalenceDoubleSweep(t *testing.T) {
	g := graph.RandomConnected(400, 1200, 11)
	for _, tc := range directionCells {
		t.Run(tc.name, func(t *testing.T) {
			var base *DoubleSweepResult
			for _, dm := range directionModes {
				res, err := DoubleSweepDiameter(g, graph.NoVertex, Config{Workers: tc.workers, Partition: tc.part, Mode: dm.mode})
				if err != nil {
					t.Fatal(err)
				}
				if base == nil {
					base = res
					continue
				}
				if base.LowerBound != res.LowerBound || base.From != res.From || base.To != res.To {
					t.Fatalf("mode %s: witness differs: %d..%d (%d) vs %d..%d (%d)",
						dm.name, base.From, base.To, base.LowerBound, res.From, res.To, res.LowerBound)
				}
				requireSameLoads(t, base.Stats, res.Stats)
			}
		})
	}
}

// TestDirectionEquivalenceUnderFaults crashes the run mid-pull and
// requires recovery to replay the identical computation: the worklist
// is rebuilt from the restored mailbox, so the replayed superstep
// re-picks the same direction deterministically.
func TestDirectionEquivalenceUnderFaults(t *testing.T) {
	g := graph.PreferentialAttachment(600, 3, 7)
	clean, err := PageRank(g, 0.85, 20, Config{Workers: 4, Mode: runtime.DirectionPush})
	if err != nil {
		t.Fatal(err)
	}
	for _, dm := range directionModes {
		t.Run(dm.name, func(t *testing.T) {
			res, err := PageRank(g, 0.85, 20, Config{
				Workers:         4,
				Mode:            dm.mode,
				CheckpointEvery: 2,
				Faults:          runtime.PlanOf(runtime.Crash(5)),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Recovery.Rollbacks == 0 {
				t.Fatal("crash plan did not trigger a rollback")
			}
			for v := range clean.Ranks {
				if clean.Ranks[v] != res.Ranks[v] {
					t.Fatalf("recovered %s run differs at vertex %d: %v vs %v",
						dm.name, v, clean.Ranks[v], res.Ranks[v])
				}
			}
		})
	}
}

// TestDirectionPushPinsWithoutCombiner: forcing pull on an algorithm
// without a combiner must be a silent no-op (every superstep pushes),
// not an error or a semantic change — k-core's messages carry sender
// identity and cannot be combined.
func TestDirectionPushPinsWithoutCombiner(t *testing.T) {
	g := graph.PreferentialAttachment(400, 3, 13)
	base, err := KCore(g, Config{Workers: 4, Mode: runtime.DirectionPush})
	if err != nil {
		t.Fatal(err)
	}
	forced, err := KCore(g, Config{Workers: 4, Mode: runtime.DirectionPull})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Stats.PulledSupersteps() != 0 {
		t.Fatalf("combiner-less run pulled %d supersteps", forced.Stats.PulledSupersteps())
	}
	if base.Degeneracy != forced.Degeneracy {
		t.Fatalf("degeneracy differs: %d vs %d", base.Degeneracy, forced.Degeneracy)
	}
	if base.Stats.TotalMessages != forced.Stats.TotalMessages {
		t.Fatalf("message counts differ: %d vs %d", base.Stats.TotalMessages, forced.Stats.TotalMessages)
	}
}

// TestDirectionEquivalenceGas: the GAS engine's pull-scatter activates
// next-round vertices by scanning transpose spans for changed sources
// instead of materializing wake batches. The activation SET is
// identical (v ∈ ∪Out(changed) ⟺ ∃u ∈ In(v) changed), so ranks,
// iteration counts, and per-iteration loads must all match.
func TestDirectionEquivalenceGas(t *testing.T) {
	g := graph.PreferentialAttachment(2000, 3, 17)
	var baseRanks []float64
	var baseStats *bsp.Stats
	for _, dm := range directionModes {
		ranks, res, err := gas.PageRank(g, 0.85, 1e-9, gas.Config{Workers: 4, Mode: dm.mode})
		if err != nil {
			t.Fatal(err)
		}
		if dm.mode == runtime.DirectionPull && res.Stats.PulledSupersteps() == 0 {
			t.Fatal("forced pull never pulled")
		}
		if baseRanks == nil {
			baseRanks, baseStats = ranks, res.Stats
			continue
		}
		for v := range baseRanks {
			if baseRanks[v] != ranks[v] {
				t.Fatalf("mode %s: gas rank differs at vertex %d", dm.name, v)
			}
		}
		requireSameLoads(t, baseStats, res.Stats)
	}
}

// TestDirectionEquivalenceBlockcentric: block-local pull is opt-in
// (DirectionPull) and reroutes intra-block messages around the boundary
// exchange. Exact-fold algorithms (min label, min distance) must be
// byte-identical; superstep counts never change; and the pull run's
// wire volume must shrink to boundary traffic only.
func TestDirectionEquivalenceBlockcentric(t *testing.T) {
	g := graph.WattsStrogatz(600, 2, 0.05, 19)
	t.Run("cc", func(t *testing.T) {
		push, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: 4})
		if err != nil {
			t.Fatal(err)
		}
		pull, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: 4, Mode: runtime.DirectionPull})
		if err != nil {
			t.Fatal(err)
		}
		for v := range push.Color {
			if push.Color[v] != pull.Color[v] {
				t.Fatalf("label differs at vertex %d", v)
			}
		}
		if a, b := push.Stats.NumSupersteps(), pull.Stats.NumSupersteps(); a != b {
			t.Fatalf("supersteps differ: %d vs %d", a, b)
		}
		// The CC block program already sends over boundary edges only,
		// so rerouting local traffic is a no-op on its wire volume —
		// it must stay exactly equal, not shrink.
		if pull.Stats.TotalMessages != push.Stats.TotalMessages {
			t.Fatalf("wire volume differs on a boundary-only program: %d vs %d",
				pull.Stats.TotalMessages, push.Stats.TotalMessages)
		}
		if pull.Stats.PulledSupersteps() != pull.Stats.NumSupersteps() {
			t.Fatalf("pull run marked %d/%d supersteps pulled",
				pull.Stats.PulledSupersteps(), pull.Stats.NumSupersteps())
		}
	})
	t.Run("sssp", func(t *testing.T) {
		graph.RandomWeights(g, 23)
		push, err := blockcentric.SSSP(g, 0, blockcentric.Config{Blocks: 4})
		if err != nil {
			t.Fatal(err)
		}
		pull, err := blockcentric.SSSP(g, 0, blockcentric.Config{Blocks: 4, Mode: runtime.DirectionPull})
		if err != nil {
			t.Fatal(err)
		}
		for v := range push.Dist {
			if push.Dist[v] != pull.Dist[v] {
				t.Fatalf("distance differs at vertex %d", v)
			}
		}
		if a, b := push.Stats.NumSupersteps(), pull.Stats.NumSupersteps(); a != b {
			t.Fatalf("supersteps differ: %d vs %d", a, b)
		}
	})
	t.Run("pagerank", func(t *testing.T) {
		// PageRank's sum folds local contributions before boundary ones
		// under pull (push interleaves them by source block), so ranks
		// are equal up to float regrouping, not bitwise.
		push, err := blockcentric.PageRank(g, 0.85, 10, blockcentric.Config{Blocks: 4, Mode: runtime.DirectionPush})
		if err != nil {
			t.Fatal(err)
		}
		pull, err := blockcentric.PageRank(g, 0.85, 10, blockcentric.Config{Blocks: 4, Mode: runtime.DirectionPull})
		if err != nil {
			t.Fatal(err)
		}
		for v := range push.Ranks {
			if d := push.Ranks[v] - pull.Ranks[v]; d > 1e-12 || d < -1e-12 {
				t.Fatalf("rank differs at vertex %d beyond rounding: %v vs %v", v, push.Ranks[v], pull.Ranks[v])
			}
		}
		if a, b := push.Stats.NumSupersteps(), pull.Stats.NumSupersteps(); a != b {
			t.Fatalf("supersteps differ: %d vs %d", a, b)
		}
		// PageRank messages every neighbor, so with range-partitioned
		// contiguous blocks most traffic is intra-block: this is where
		// local rerouting must actually shrink the wire volume.
		if pull.Stats.TotalMessages >= push.Stats.TotalMessages {
			t.Fatalf("block-local pull did not reduce wire volume: %d vs %d",
				pull.Stats.TotalMessages, push.Stats.TotalMessages)
		}
	})
	t.Run("cc-faults", func(t *testing.T) {
		// A crash mid-run under block-local pull must recover to the
		// same labels: inboxLocal is checkpointed with the inboxes, so
		// the restored barrier state replays identically.
		clean, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: 4, Mode: runtime.DirectionPull})
		if err != nil {
			t.Fatal(err)
		}
		faulty, err := blockcentric.ConnectedComponents(g, blockcentric.Config{
			Blocks: 4, Mode: runtime.DirectionPull,
			CheckpointEvery: 2, Faults: runtime.PlanOf(runtime.Crash(3)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if faulty.Stats.Recovery.Rollbacks == 0 {
			t.Fatal("crash plan did not trigger a rollback")
		}
		for v := range clean.Color {
			if clean.Color[v] != faulty.Color[v] {
				t.Fatalf("recovered label differs at vertex %d", v)
			}
		}
	})
}

// TestDirectionModeParseErrors pins the CLI-facing parser.
func TestDirectionModeParseErrors(t *testing.T) {
	if _, err := runtime.ParseDirectionMode("sideways"); err == nil {
		t.Fatal("expected an error for an unknown mode")
	}
	m, err := runtime.ParseDirectionMode("")
	if err != nil || m != runtime.DirectionAuto {
		t.Fatalf("empty mode: got %v, %v", m, err)
	}
}
