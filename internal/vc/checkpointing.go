package vc

import "maps"

// Checkpoint support for the vertex-centric programs. Two footguns
// live here, both invisible until a rollback actually happens:
//
//   - Programs whose vertex value V carries slices or maps must
//     implement CloneValue (pregel.ValueCloner), or a checkpoint's
//     values alias the live computation: the run mutates the snapshot
//     after it was "saved", and recovery restores corrupted state.
//
//   - Programs with master state (fields mutated in BeforeSuperstep)
//     must implement pregel.Snapshotter, or a rollback rewinds vertex
//     state while the master keeps marching forward — e.g. the S-V
//     phase machine would resume mid-cycle against round-0 values.
//
// Restore(nil) means "fresh restart": every program here is
// constructed with zero-valued master state (all phase enums start at
// iota 0), so resetting the mutable fields to their zero values is
// exactly the initial state. Config-like fields (source lists, k, nl,
// trace) are never touched.

// --- vertex-value deep copies ---

func (p *diamProgram) CloneValue(v diamValue) diamValue {
	v.dist = append([]int32(nil), v.dist...)
	return v
}

func (p *bcBatchProgram) CloneValue(v bcBatchValue) bcBatchValue {
	return bcBatchValue{
		dist:    append([]int32(nil), v.dist...),
		sigma:   append([]float64(nil), v.sigma...),
		delta:   append([]float64(nil), v.delta...),
		pending: append([]int32(nil), v.pending...),
		done:    append([]bool(nil), v.done...),
	}
}

func (p *bpmProgram) CloneValue(v bpmValue) bpmValue {
	v.candidates = append([]VertexID(nil), v.candidates...)
	return v
}

func (p *triProgram) CloneValue(v triValue) triValue {
	v.higher = append([]VertexID(nil), v.higher...)
	return v
}

func (p *simProgram) CloneValue(v simValue) simValue {
	v.childSets = maps.Clone(v.childSets)
	v.parentSets = maps.Clone(v.parentSets)
	return v
}

func (eulerProgram) CloneValue(v eulerValue) eulerValue {
	v.succ = maps.Clone(v.succ)
	return v
}

func (kcoreProgram) CloneValue(v kcoreValue) kcoreValue {
	v.nbrEst = maps.Clone(v.nbrEst)
	return v
}

func (p *mcstProgram) CloneValue(v mcstValue) mcstValue {
	v.edges = append([]mcstEdge(nil), v.edges...)
	return v
}

func (p *scProgram) CloneValue(v scValue) scValue {
	cs := make([]SemiCluster, len(v.clusters))
	for i, c := range v.clusters {
		c.Members = append([]VertexID(nil), c.Members...)
		cs[i] = c
	}
	return scValue{clusters: cs}
}

func (p *ssProgram) CloneValue(v ssValue) ssValue {
	v.records = maps.Clone(v.records)
	v.fresh = append([]ssRecord(nil), v.fresh...)
	return v
}

// --- master-state snapshots ---

type svMasterSnap struct {
	roundChanged bool
	edges        [][2]VertexID
	snapshots    [][]VertexID
}

func (p *svProgram) Snapshot() any {
	return svMasterSnap{
		roundChanged: p.roundChanged,
		edges:        append([][2]VertexID(nil), p.edges...),
		snapshots:    append([][]VertexID(nil), p.snapshots...),
	}
}

func (p *svProgram) Restore(s any) {
	if s == nil {
		p.roundChanged, p.edges, p.snapshots = false, nil, nil
		return
	}
	m := s.(svMasterSnap)
	p.roundChanged = m.roundChanged
	// Copy on restore too: the same snapshot generation can be
	// restored more than once, and the run appends to these slices.
	p.edges = append([][2]VertexID(nil), m.edges...)
	p.snapshots = append([][]VertexID(nil), m.snapshots...)
}

type mcstMasterSnap struct {
	phase  int
	picked []pickedEdge
}

func (p *mcstProgram) Snapshot() any {
	return mcstMasterSnap{phase: p.phase, picked: append([]pickedEdge(nil), p.picked...)}
}

func (p *mcstProgram) Restore(s any) {
	if s == nil {
		p.phase, p.picked = 0, nil
		return
	}
	m := s.(mcstMasterSnap)
	p.phase = m.phase
	p.picked = append([]pickedEdge(nil), m.picked...)
}

func (p *bcProgram) Snapshot() any { return p.mode }
func (p *bcProgram) Restore(s any) {
	if s == nil {
		p.mode = 0
		return
	}
	p.mode = s.(int)
}

func (p *bcBatchProgram) Snapshot() any { return p.mode }
func (p *bcBatchProgram) Restore(s any) {
	if s == nil {
		p.mode = 0
		return
	}
	p.mode = s.(int)
}

func (p *mwmProgram) Snapshot() any { return p.phase }
func (p *mwmProgram) Restore(s any) {
	if s == nil {
		p.phase = 0
		return
	}
	p.phase = s.(int)
}

func (p *bpmProgram) Snapshot() any { return p.phase }
func (p *bpmProgram) Restore(s any) {
	if s == nil {
		p.phase = 0
		return
	}
	p.phase = s.(int)
}

func (p *misProgram) Snapshot() any { return p.phase }
func (p *misProgram) Restore(s any) {
	if s == nil {
		p.phase = 0
		return
	}
	p.phase = s.(int)
}

func (p *sccProgram) Snapshot() any { return p.phase }
func (p *sccProgram) Restore(s any) {
	if s == nil {
		p.phase = 0
		return
	}
	p.phase = s.(int)
}

type colMasterSnap struct{ phase, c int }

func (p *colProgram) Snapshot() any { return colMasterSnap{p.phase, p.c} }
func (p *colProgram) Restore(s any) {
	if s == nil {
		p.phase, p.c = 0, 0
		return
	}
	m := s.(colMasterSnap)
	p.phase, p.c = m.phase, m.c
}

func (p *hitsProgram) Snapshot() any { return p.norm }
func (p *hitsProgram) Restore(s any) {
	if s == nil {
		p.norm = 0
		return
	}
	p.norm = s.(float64)
}
