package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// ListRankResult holds the output of vertex-centric list ranking:
// Sum[v] is the sum of Val over the elements from v back to the list
// head, inclusive.
type ListRankResult struct {
	Sum   []int64
	Stats *bsp.Stats
}

const (
	lrReq int8 = iota
	lrReply
)

type lrMsg struct {
	Kind int8
	From VertexID
	Sum  int64
	Pred VertexID
}

type lrValue struct {
	sum  int64
	pred VertexID
}

type lrProgram struct {
	pred []VertexID
	val  []int64
}

func (p *lrProgram) Init(g *graph.Graph, id VertexID) lrValue {
	return lrValue{sum: p.val[id], pred: p.pred[id]}
}

func (p *lrProgram) Compute(ctx *pregel.Context[lrValue, lrMsg], msgs []lrMsg) {
	v := ctx.Value()
	if ctx.Superstep()%2 == 0 {
		// Apply the reply from the previous round, then issue the next
		// pointer-jump request.
		for _, m := range msgs {
			if m.Kind != lrReply {
				continue
			}
			v.sum += m.Sum
			v.pred = m.Pred
		}
		if v.pred != graph.NoVertex {
			ctx.SendTo(v.pred, lrMsg{Kind: lrReq, From: ctx.ID()})
		}
		ctx.VoteToHalt()
		return
	}
	// Odd superstep: serve requests with this round's (sum, pred).
	for _, m := range msgs {
		if m.Kind != lrReq {
			continue
		}
		ctx.SendTo(m.From, lrMsg{Kind: lrReply, Sum: v.sum, Pred: v.pred})
	}
	ctx.VoteToHalt()
}

func (p *lrProgram) StateUnits(v *lrValue) int64 { return 2 }

// ListRank runs the BPPA pointer-jumping list-ranking algorithm of
// §3.4.2: each element v with predecessor link pred[v] (NoVertex at the
// head) and value val[v] learns sum[v], the sum of values from v to the
// head. Each pointer jump is a two-superstep request/reply round, so the
// algorithm takes O(log n) rounds; each element sends and receives at
// most one message per superstep (pred is injective on a list).
func ListRank(pred []VertexID, val []int64, cfg Config) (*ListRankResult, error) {
	n := len(pred)
	// The list as a graph: one directed edge per predecessor link, used
	// for degree accounting in the BPPA checks.
	g := graph.New(n, true)
	for v, p := range pred {
		if p != graph.NoVertex {
			g.AddEdge(VertexID(v), p)
		}
	}
	g.EnsureIn()
	prog := &lrProgram{pred: pred, val: val}
	eng := pregel.NewEngine[lrValue, lrMsg](g, prog, engineCfg[lrMsg](cfg))
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &ListRankResult{Sum: make([]int64, n), Stats: res.Stats}
	for v, lv := range res.Values {
		out.Sum[v] = lv.sum
	}
	return out, nil
}

// SeqListRank is the O(n) sequential reference used in tests and by the
// Table 1 harness as the baseline for row 9's list-ranking component.
func SeqListRank(pred []VertexID, val []int64) []int64 {
	n := len(pred)
	sum := make([]int64, n)
	done := make([]bool, n)
	var rec func(v VertexID) int64
	rec = func(v VertexID) int64 {
		if done[v] {
			return sum[v]
		}
		done[v] = true
		if pred[v] == graph.NoVertex {
			sum[v] = val[v]
		} else {
			sum[v] = val[v] + rec(pred[v])
		}
		return sum[v]
	}
	for v := 0; v < n; v++ {
		rec(VertexID(v))
	}
	return sum
}
