package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// IncPRState is the persistent state of incremental PageRank: the full
// per-superstep rank history of a fixed-K power iteration at graph
// epoch Epoch. Keeping all K+1 vectors (not just the final ranks) is
// what makes warm starts byte-identical: superstep s of a warm run
// recomputes only vertices whose superstep-s inputs changed and copies
// every other value verbatim from Hist[s+1] — by induction the copied
// values are bit-for-bit what a from-scratch run would recompute.
type IncPRState struct {
	Epoch int64
	Alpha float64
	K     int
	Hist  [][]float64
	Cold  bool
}

// Ranks returns the final rank vector (Hist[K]).
func (s *IncPRState) Ranks() []float64 { return s.Hist[len(s.Hist)-1] }

// IncrementalPageRank computes (or incrementally repairs) a fixed-K
// power-iteration PageRank. IncrementalPageRank is
// PrepareIncrementalPageRank(g, alpha, k, prior, cfg)().
//
// Unlike incremental CC/SSSP — unique fixpoints a worklist drain
// reaches from any seed superset — PageRank's converged low bits depend
// on the update schedule, so the incremental form fixes the schedule: K
// synchronous pull supersteps in canonical in-neighbor order,
// r_{s+1}[v] = (1-α)/n + α·Σ_{u∈In(v)} r_s[u]/outdeg(u). A warm start
// re-evaluates only the frontier of change — the structurally dirty
// vertices (in-adjacency or an in-neighbor's out-degree touched by the
// delta) plus out-neighbors of values that changed last superstep — and
// the change frontier collapses wherever a perturbation rounds away on
// a high-degree sum, which is where the speedup over recompute comes
// from.
func IncrementalPageRank(g *graph.Graph, alpha float64, k int, prior *IncPRState, cfg IncConfig) (*IncPRState, *bsp.Stats, error) {
	return PrepareIncrementalPageRank(g, alpha, k, prior, cfg)()
}

// PrepareIncrementalPageRank pins the delta view and performs the
// dirty-set analysis now; the returned closure runs the supersteps
// lock-free (under runtime.Driver, so checkpoint/rollback and fault
// injection work exactly as in the BSP engines) and unpins.
func PrepareIncrementalPageRank(g *graph.Graph, alpha float64, k int, prior *IncPRState, cfg IncConfig) func() (*IncPRState, *bsp.Stats, error) {
	view := g.PinDelta()
	n := view.N()
	view.Base().EnsureIn() // the sweep pulls over the transpose
	p := &incPRPolicy{view: view, n: n, alpha: alpha, k: k}
	p.outDeg = make([]float64, n)
	for v := 0; v < n; v++ {
		d := view.OutDegree(VertexID(v))
		if d == 0 {
			d = 1 // dangling; never read (a vertex with out-edges has outdeg >= 1)
		}
		p.outDeg[v] = float64(d)
	}
	if prior != nil && prior.Alpha == alpha && prior.K == k &&
		len(prior.Hist) == k+1 && len(prior.Hist[0]) == n {
		if muts, ok := g.MutationsSince(prior.Epoch); ok {
			p.prior = prior.Hist
			p.dirty0 = prDirtySet(view, n, muts)
		}
	}
	p.hist = make([][]float64, k+1)
	r0 := make([]float64, n)
	for v := range r0 {
		r0[v] = 1 / float64(n)
	}
	p.hist[0] = r0
	p.cur = r0
	p.mark = make([]bool, n)
	stats := &bsp.Stats{Workers: 1, N: n}
	d := rt.NewDriver[*incPRSnap](p, stats, rt.DriverConfig{
		Name:              "vc: incremental pagerank",
		Workers:           1,
		MaxSteps:          k + 1,
		CapErr:            bsp.ErrSuperstepCap,
		CheckpointEvery:   cfg.CheckpointEvery,
		FullSnapshotEvery: cfg.FullSnapshotEvery,
		Faults:            cfg.Faults,
		Ctx:               cfg.Ctx,
		Pool:              cfg.Pool,
		Job:               cfg.Job,
	})
	return func() (*IncPRState, *bsp.Stats, error) {
		defer g.UnpinDelta(view)
		if _, err := d.Run(); err != nil {
			return nil, stats, err
		}
		return &IncPRState{Epoch: view.Epoch(), Alpha: alpha, K: k, Hist: p.hist, Cold: p.prior == nil}, stats, nil
	}
}

// prDirtySet returns the sorted set of structurally dirty vertices: for
// every mutated edge (u,v), both endpoints (v's in-adjacency changed)
// and u's current out-neighbors (their sums divide by u's changed
// out-degree) — for undirected graphs symmetrically. These are
// re-evaluated every superstep; copying their memoized value would bake
// in the old adjacency.
func prDirtySet(view *graph.DeltaCSR, n int, muts []graph.Mutation) []VertexID {
	in := make([]bool, n)
	add := func(v VertexID) { in[v] = true }
	for _, m := range muts {
		add(m.U)
		add(m.V)
		view.ForEachOut(m.U, func(z VertexID, _ float64) { add(z) })
		if !view.Directed() {
			view.ForEachOut(m.V, func(z VertexID, _ float64) { add(z) })
		}
	}
	var out []VertexID
	for v := 0; v < n; v++ {
		if in[v] {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// incPRPolicy runs the memoized power iteration as a runtime.Policy:
// one driver step per superstep, quiescent after K.
type incPRPolicy struct {
	view   *graph.DeltaCSR
	n      int
	alpha  float64
	k      int
	outDeg []float64
	prior  [][]float64 // nil = cold (recompute everything)
	dirty0 []VertexID  // sorted; re-evaluated every superstep when warm

	hist    [][]float64
	cur     []float64  // r_step
	changed []VertexID // {v : cur[v] != prior[step][v]}, warm only
	mark    []bool     // candidate dedup scratch
}

func (p *incPRPolicy) recompute(v VertexID) (float64, int64) {
	sum := 0.0
	edges := int64(0)
	p.view.ForEachIn(v, func(u VertexID, _ float64) {
		sum += p.cur[u] / p.outDeg[u]
		edges++
	})
	return (1-p.alpha)/float64(p.n) + p.alpha*sum, edges
}

// Quiescent implements runtime.Policy: K supersteps, always.
func (p *incPRPolicy) Quiescent(step, pending int) bool { return step >= p.k }

// BarrierFaults implements runtime.BarrierFaultPolicy: a dropped batch
// loses the change frontier (unreconstructable in place — roll back); a
// duplicated batch is a no-op because candidates are a set.
func (p *incPRPolicy) BarrierFaults(inj *rt.Injector, step int) (lost bool) {
	return inj.LaneFault(step, 0, 0) == rt.FaultDropLane
}

// Superstep implements runtime.Policy: compute r_{step+1} into
// hist[step+1]. Warm runs copy the memoized vector and re-evaluate only
// the candidate set; cold runs evaluate every vertex.
func (p *incPRPolicy) Superstep(step int, ss *bsp.SuperstepStats) (int, error) {
	ss.Pulled = true
	next := make([]float64, p.n)
	if p.prior == nil {
		for v := 0; v < p.n; v++ {
			val, edges := p.recompute(VertexID(v))
			next[v] = val
			ss.Work[0] += edges
		}
		ss.Active[0] = int64(p.n)
		p.hist[step+1] = next
		p.cur = next
		return p.n, nil
	}
	// Candidates: structurally dirty vertices plus out-neighbors of
	// last superstep's changed values. The mark array both dedups and —
	// via the in-order scan below — yields canonical vertex order
	// without a sort (the scan is O(n), already paid by the memo copy).
	live := 0
	for _, v := range p.dirty0 {
		if !p.mark[v] {
			p.mark[v] = true
			live++
		}
	}
	for _, v := range p.changed {
		p.view.ForEachOut(v, func(z VertexID, _ float64) {
			if !p.mark[z] {
				p.mark[z] = true
				live++
			}
		})
	}
	copy(next, p.prior[step+1])
	var newChanged []VertexID
	cands := int64(0)
	for v := 0; v < p.n && live > 0; v++ {
		if !p.mark[v] {
			continue
		}
		p.mark[v] = false
		live--
		cands++
		val, edges := p.recompute(VertexID(v))
		ss.Work[0] += edges
		next[v] = val
		if val != p.prior[step+1][v] {
			newChanged = append(newChanged, VertexID(v))
		}
	}
	ss.Active[0] = cands
	p.hist[step+1] = next
	p.cur = next
	p.changed = newChanged
	return len(newChanged), nil
}

// Snapshot implements runtime.Policy: the current rank vector and
// change frontier. The hist prefix written so far survives rollback —
// replayed supersteps overwrite their slots deterministically.
func (p *incPRPolicy) Snapshot() *incPRSnap {
	return &incPRSnap{
		cur:     append([]float64(nil), p.cur...),
		changed: append([]VertexID(nil), p.changed...),
	}
}

// Restore implements runtime.Policy.
func (p *incPRPolicy) Restore(snap *incPRSnap, step int, ok bool) {
	if ok {
		p.cur = append([]float64(nil), snap.cur...)
		p.changed = append([]VertexID(nil), snap.changed...)
		return
	}
	p.cur = p.hist[0]
	p.changed = nil
}

type incPRSnap struct {
	cur     []float64
	changed []VertexID
}
