package vc

import (
	"fmt"
	"math/bits"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Graph simulation and dual simulation (Table 1 rows 18, 19): the
// distributed vertex-centric pattern matching of Fard et al. Every data
// vertex keeps a matchSet of query nodes it may simulate; vertices
// exchange matchSets with their parents (and, for dual simulation,
// children), and re-evaluate the simulation conditions whenever a
// neighbor's set shrinks, until a global fixpoint. The relation
// computed is the maximum (dual) simulation, identical to the
// sequential Henzinger et al. / Ma et al. baselines.

// SimResult holds a simulation relation as bitmasks: Match[u] has bit q
// set iff query node q is simulated by data vertex u.
type SimResult struct {
	Match []uint64
	Stats *bsp.Stats
}

// Sim converts the bitmask representation to the [][]bool layout of the
// sequential baselines (sim[q][u]).
func (r *SimResult) Sim(nq int) [][]bool {
	sim := make([][]bool, nq)
	for q := 0; q < nq; q++ {
		sim[q] = make([]bool, len(r.Match))
		for u, m := range r.Match {
			sim[q][u] = m&(1<<uint(q)) != 0
		}
	}
	return sim
}

type simMsg struct {
	From VertexID
	Set  uint64
}

type simValue struct {
	set        uint64
	childSets  map[VertexID]uint64
	parentSets map[VertexID]uint64
}

type simProgram struct {
	q    *graph.Graph
	dual bool
}

func (p *simProgram) Init(g *graph.Graph, id VertexID) simValue {
	var set uint64
	for qi := 0; qi < p.q.N(); qi++ {
		if g.Label(id) == p.q.Label(VertexID(qi)) {
			set |= 1 << uint(qi)
		}
	}
	return simValue{set: set}
}

// evaluate re-checks the simulation conditions for every query node
// still in the vertex's matchSet and returns the shrunk set.
func (p *simProgram) evaluate(ctx *pregel.Context[simValue, simMsg], v *simValue) uint64 {
	set := v.set
	for qi := 0; qi < p.q.N(); qi++ {
		bit := uint64(1) << uint(qi)
		if set&bit == 0 {
			continue
		}
		ok := true
		for _, qe := range p.q.Out[qi] {
			ctx.Charge(1)
			found := false
			for _, ge := range ctx.OutEdges() {
				ctx.Charge(1)
				if v.childSets[ge.Dst]&(1<<uint(qe.Dst)) != 0 {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok && p.dual {
			for _, qe := range p.q.In[qi] {
				ctx.Charge(1)
				found := false
				for _, ge := range ctx.InEdges() {
					ctx.Charge(1)
					if v.parentSets[ge.Dst]&(1<<uint(qe.Dst)) != 0 {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
		}
		if !ok {
			set &^= bit
		}
	}
	return set
}

func (p *simProgram) announce(ctx *pregel.Context[simValue, simMsg], set uint64) {
	m := simMsg{From: ctx.ID(), Set: set}
	// Parents evaluate child conditions, so children inform parents.
	for _, e := range ctx.InEdges() {
		ctx.SendTo(e.Dst, m)
	}
	if p.dual {
		for _, e := range ctx.OutEdges() {
			ctx.SendTo(e.Dst, m)
		}
	}
}

func (p *simProgram) Compute(ctx *pregel.Context[simValue, simMsg], msgs []simMsg) {
	v := ctx.Value()
	switch ctx.Superstep() {
	case 0:
		// Label matching done in Init; tell neighbors the initial sets.
		if v.childSets == nil {
			v.childSets = make(map[VertexID]uint64)
			v.parentSets = make(map[VertexID]uint64)
		}
		if v.set != 0 {
			p.announce(ctx, v.set)
		}
		return // stay active: every vertex evaluates at superstep 1
	default:
		for _, m := range msgs {
			// A message from an out-neighbor is a child set; from an
			// in-neighbor a parent set. A vertex can be both (2-cycle),
			// in which case the set is stored as both, which is exactly
			// what the conditions need.
			v.childSets[m.From] = m.Set
			if p.dual {
				v.parentSets[m.From] = m.Set
			}
		}
		newSet := p.evaluate(ctx, v)
		if newSet != v.set {
			v.set = newSet
			p.announce(ctx, v.set)
		}
		ctx.VoteToHalt()
	}
}

func (p *simProgram) StateUnits(v *simValue) int64 {
	return int64(1 + len(v.childSets) + len(v.parentSets) + bits.OnesCount64(v.set))
}

func checkSimInputs(g, q *graph.Graph) error {
	if !g.Directed || !q.Directed {
		return errNotDirected
	}
	if q.N() > 64 {
		return fmt.Errorf("vc: query has %d nodes; bitmask representation supports at most 64", q.N())
	}
	return nil
}

func runSim(g, q *graph.Graph, dual bool, cfg Config) (*SimResult, error) {
	if err := checkSimInputs(g, q); err != nil {
		return nil, err
	}
	g.EnsureIn()
	q.EnsureIn()
	prog := &simProgram{q: q, dual: dual}
	eng := pregel.NewEngine[simValue, simMsg](g, prog, engineCfg[simMsg](cfg))
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &SimResult{Match: make([]uint64, g.N()), Stats: res.Stats}
	for v, val := range res.Values {
		out.Match[v] = val.set
	}
	return out, nil
}

// GraphSimulation computes the maximum graph-simulation relation of
// query q in data graph g (both directed, vertex-labeled).
func GraphSimulation(g, q *graph.Graph, cfg Config) (*SimResult, error) {
	return runSim(g, q, false, cfg)
}

// DualSimulation additionally enforces the parent conditions of Ma et
// al., shrinking the relation to the maximum dual simulation.
func DualSimulation(g, q *graph.Graph, cfg Config) (*SimResult, error) {
	return runSim(g, q, true, cfg)
}
