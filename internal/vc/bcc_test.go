package vc

import (
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

// samePartition verifies that two edge labelings induce the same
// partition of the edge set.
func samePartition(t *testing.T, got map[[2]VertexID]int, want map[[2]VertexID]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("labelings cover %d vs %d edges", len(got), len(want))
	}
	fwd := make(map[int]int)
	bwd := make(map[int]int)
	for k, g := range got {
		w, ok := want[k]
		if !ok {
			t.Fatalf("edge %v missing from reference", k)
		}
		if m, seen := fwd[g]; seen && m != w {
			t.Fatalf("label %d maps to both %d and %d", g, m, w)
		}
		if m, seen := bwd[w]; seen && m != g {
			t.Fatalf("reference label %d maps to both %d and %d", w, m, g)
		}
		fwd[g] = w
		bwd[w] = g
	}
}

func seqBCCLabels(g *graph.Graph) map[[2]VertexID]int {
	var ops seq.Ops
	res := seq.BCC(g, &ops)
	return res.EdgeComp
}

func TestBCCSmallShapes(t *testing.T) {
	cases := map[string]func() *graph.Graph{
		"triangle-with-pendant": func() *graph.Graph {
			g := graph.New(4, false)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(0, 2)
			g.AddEdge(0, 3)
			return g
		},
		"two-triangles-sharing-a-vertex": func() *graph.Graph {
			g := graph.New(5, false)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(0, 2)
			g.AddEdge(2, 3)
			g.AddEdge(3, 4)
			g.AddEdge(2, 4)
			return g
		},
		"path":        func() *graph.Graph { return graph.Path(10) },
		"cycle":       func() *graph.Graph { return graph.Cycle(8) },
		"single-edge": func() *graph.Graph { return graph.Path(2) },
		"complete":    func() *graph.Graph { return graph.Complete(6) },
		"star":        func() *graph.Graph { return graph.Star(9) },
		"theta": func() *graph.Graph {
			// Two vertices joined by three internally disjoint paths:
			// one big biconnected component.
			g := graph.New(8, false)
			g.AddEdge(0, 1)
			g.AddEdge(1, 7)
			g.AddEdge(0, 2)
			g.AddEdge(2, 3)
			g.AddEdge(3, 7)
			g.AddEdge(0, 4)
			g.AddEdge(4, 5)
			g.AddEdge(5, 6)
			g.AddEdge(6, 7)
			return g
		},
	}
	for name, mk := range cases {
		mk := mk
		t.Run(name, func(t *testing.T) {
			g := mk()
			g.SortAdjacency()
			res, err := BCC(g, Config{Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			samePartition(t, res.EdgeComp, seqBCCLabels(g))
		})
	}
}

func TestBCCRandomConnected(t *testing.T) {
	for _, tc := range []struct {
		n, m int
		seed int64
	}{
		{60, 70, 1},  // sparse: many bridges
		{60, 120, 2}, // medium
		{60, 300, 3}, // dense: few components
		{120, 140, 4},
		{200, 260, 5},
	} {
		g := graph.RandomConnected(tc.n, tc.m, tc.seed)
		res, err := BCC(g, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		samePartition(t, res.EdgeComp, seqBCCLabels(g))
	}
}

func TestBCCComponentCount(t *testing.T) {
	g := graph.RandomConnected(100, 130, 9)
	res, err := BCC(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	want := seq.BCC(g, &ops)
	if res.NumComponents != want.NumComponents {
		t.Fatalf("NumComponents = %d, want %d", res.NumComponents, want.NumComponents)
	}
}

func TestBCCRejectsDisconnected(t *testing.T) {
	g := graph.New(4, false)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, err := BCC(g, Config{}); err == nil {
		t.Fatal("expected error on disconnected input")
	}
}

func TestBCCQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := 20 + int(uint64(seed)%40)
		g := graph.RandomConnected(n, n+n/2, seed)
		res, err := BCC(g, Config{Workers: 2})
		if err != nil {
			return false
		}
		want := seqBCCLabels(g)
		if len(res.EdgeComp) != len(want) {
			return false
		}
		fwd := make(map[int]int)
		bwd := make(map[int]int)
		for k, gl := range res.EdgeComp {
			wl, ok := want[k]
			if !ok {
				return false
			}
			if m, seen := fwd[gl]; seen && m != wl {
				return false
			}
			if m, seen := bwd[wl]; seen && m != gl {
				return false
			}
			fwd[gl] = wl
			bwd[wl] = gl
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
