package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Strongly connected components (Table 1 row 7) by iterative
// forward/backward min-label decomposition, the standard vertex-centric
// SCC scheme built from the connected-component primitive the paper
// attributes to Yan et al.: propagate minimum labels forward to color
// the graph into regions, propagate each region's root label backward
// inside its region, and extract vertices reached in both directions as
// one SCC per region root. Rounds repeat on the unassigned remainder.
// Not BPPA (superstep count is driven by δ and the number of rounds),
// and total work exceeds the linear-time Tarjan baseline.

// SCCResult labels every vertex with the smallest vertex ID of its
// strongly connected component.
type SCCResult struct {
	Comp  []VertexID
	Stats *bsp.Stats
}

const (
	sccFWInit = iota
	sccFW
	sccBWInit
	sccBW
	sccCollect
)

type sccValue struct {
	scc       VertexID // assigned component, NoVertex while active
	fw        VertexID
	bwReached bool
}

type sccProgram struct {
	phase int // master state
}

func (p *sccProgram) Init(g *graph.Graph, id VertexID) sccValue {
	return sccValue{scc: graph.NoVertex, fw: id}
}

func (p *sccProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	if mc.Superstep() > 0 {
		changed, _ := mc.Agg("changed").(bool)
		switch p.phase {
		case sccFWInit:
			p.phase = sccFW
		case sccFW:
			if !changed {
				p.phase = sccBWInit
			}
		case sccBWInit:
			p.phase = sccBW
		case sccBW:
			if !changed {
				p.phase = sccCollect
			}
		case sccCollect:
			remaining, _ := mc.Agg("remaining").(int64)
			if remaining == 0 {
				mc.Halt()
				return
			}
			p.phase = sccFWInit
		}
	}
	mc.SetGlobal("phase", p.phase)
}

func (p *sccProgram) Compute(ctx *pregel.Context[sccValue, VertexID], msgs []VertexID) {
	v := ctx.Value()
	if v.scc != graph.NoVertex {
		return // already extracted; ignore stray messages
	}
	switch ctx.Global("phase").(int) {
	case sccFWInit:
		v.fw = ctx.ID()
		v.bwReached = false
		ctx.SendToNeighbors(v.fw)
	case sccFW:
		min := v.fw
		for _, m := range msgs {
			if m < min {
				min = m
			}
		}
		if min < v.fw {
			v.fw = min
			ctx.SendToNeighbors(v.fw)
			ctx.Aggregate("changed", true)
		}
	case sccBWInit:
		if v.fw == ctx.ID() {
			v.bwReached = true
			for _, e := range ctx.InEdges() {
				ctx.SendTo(e.Dst, v.fw)
			}
			ctx.Aggregate("changed", true)
		}
	case sccBW:
		if !v.bwReached {
			for _, m := range msgs {
				if m == v.fw {
					v.bwReached = true
					for _, e := range ctx.InEdges() {
						ctx.SendTo(e.Dst, v.fw)
					}
					ctx.Aggregate("changed", true)
					break
				}
			}
		}
	case sccCollect:
		if v.bwReached {
			v.scc = v.fw
		} else {
			ctx.Aggregate("remaining", int64(1))
		}
	}
}

func (p *sccProgram) StateUnits(v *sccValue) int64 { return 3 }

// SCC computes strongly connected components of a directed graph.
func SCC(g *graph.Graph, cfg Config) (*SCCResult, error) {
	if !g.Directed {
		return nil, errNotDirected
	}
	g.EnsureIn()
	prog := &sccProgram{}
	eng := pregel.NewEngine[sccValue, VertexID](g, prog, engineCfg[VertexID](cfg))
	eng.RegisterAggregator("changed", pregel.BoolOr())
	eng.RegisterAggregator("remaining", pregel.SumInt64())
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &SCCResult{Comp: make([]VertexID, g.N()), Stats: res.Stats}
	for v, val := range res.Values {
		out.Comp[v] = val.scc
	}
	return out, nil
}
