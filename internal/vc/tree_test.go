package vc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

// paperTree is the 7-vertex example tree of the paper's Figure 4(a):
// 0 connected to 1, 5, 6; 1 to 2, 3, 4.
func paperTree() *graph.Graph {
	t := graph.New(7, false)
	t.AddEdge(0, 1)
	t.AddEdge(0, 5)
	t.AddEdge(0, 6)
	t.AddEdge(1, 2)
	t.AddEdge(1, 3)
	t.AddEdge(1, 4)
	t.SortAdjacency()
	return t
}

// --- Euler tour ---

func TestEulerTourPaperExample(t *testing.T) {
	tr := paperTree()
	res, err := EulerTour(tr, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's example: first(0)=1, last(0)=6, next_0(1)=5, next_0(6)=1.
	if got := res.Succ[1][0]; got != 5 { // next_0(1) stored at vertex 1 under key 0
		t.Fatalf("next_0(1) = %d, want 5", got)
	}
	if got := res.Succ[1][4]; got != 0 { // wrap: next_1(4)... stored at 4? check below instead
		_ = got
	}
	var ops seq.Ops
	want := seq.EulerTour(tr, 0, &ops)
	got := res.Walk(tr, 0)
	if len(got) != len(want) {
		t.Fatalf("tour length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tour[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEulerTourIsEulerianCircuit(t *testing.T) {
	for _, seed := range []int64{1, 5, 9} {
		tr := graph.RandomTree(64, seed)
		res, err := EulerTour(tr, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		tour := res.Walk(tr, 0)
		if len(tour) != 2*(tr.N()-1) {
			t.Fatalf("tour length %d", len(tour))
		}
		seen := make(map[seq.DirEdge]bool)
		for _, e := range tour {
			if seen[e] {
				t.Fatalf("edge %v visited twice", e)
			}
			seen[e] = true
		}
		// Circuit closes: successor of last edge is the first edge.
		last := tour[len(tour)-1]
		if next := (seq.DirEdge{U: last.V, V: res.Succ[last.U][last.V]}); next != tour[0] {
			t.Fatalf("tour does not close: %v -> %v, want %v", last, next, tour[0])
		}
	}
}

func TestEulerTourSuperstepsConstant(t *testing.T) {
	small, err := EulerTour(graph.RandomTree(32, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := EulerTour(graph.RandomTree(1024, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats.NumSupersteps() != large.Stats.NumSupersteps() {
		t.Fatalf("superstep counts differ: %d vs %d",
			small.Stats.NumSupersteps(), large.Stats.NumSupersteps())
	}
	if large.Stats.NumSupersteps() > 3 {
		t.Fatalf("expected constant (<=3) supersteps, got %d", large.Stats.NumSupersteps())
	}
}

func TestEulerTourRejectsNonTree(t *testing.T) {
	if _, err := EulerTour(graph.Cycle(5), Config{}); err == nil {
		t.Fatal("expected error on non-tree input")
	}
}

// --- List ranking ---

func TestListRankMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(200)
		// Random permutation defines list order; element order[i] has
		// predecessor order[i-1].
		order := rng.Perm(n)
		pred := make([]VertexID, n)
		val := make([]int64, n)
		for i := range val {
			val[i] = int64(rng.Intn(10))
		}
		pred[order[0]] = graph.NoVertex
		for i := 1; i < n; i++ {
			pred[order[i]] = VertexID(order[i-1])
		}
		res, err := ListRank(pred, val, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := SeqListRank(pred, val)
		for v := range want {
			if res.Sum[v] != want[v] {
				t.Fatalf("trial %d: sum[%d] = %d, want %d", trial, v, res.Sum[v], want[v])
			}
		}
	}
}

func TestListRankLogSupersteps(t *testing.T) {
	mk := func(n int) []VertexID {
		pred := make([]VertexID, n)
		pred[0] = graph.NoVertex
		for i := 1; i < n; i++ {
			pred[i] = VertexID(i - 1)
		}
		return pred
	}
	val := func(n int) []int64 { return make([]int64, n) }
	small, err := ListRank(mk(64), val(64), Config{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := ListRank(mk(4096), val(4096), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 64x size increase should cost ~6 extra rounds (12 supersteps), not 64x.
	if d := large.Stats.NumSupersteps() - small.Stats.NumSupersteps(); d > 16 {
		t.Fatalf("supersteps grew by %d; want logarithmic growth", d)
	}
	// Each element sends/receives at most one message per superstep.
	if large.Stats.MaxSentPerDeg > 1.01 || large.Stats.MaxRecvPerDeg > 1.01 {
		t.Fatalf("per-vertex message bound violated: sent=%v recv=%v",
			large.Stats.MaxSentPerDeg, large.Stats.MaxRecvPerDeg)
	}
}

func TestListRankSingleElement(t *testing.T) {
	res, err := ListRank([]VertexID{graph.NoVertex}, []int64{7}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum[0] != 7 {
		t.Fatalf("sum = %d, want 7", res.Sum[0])
	}
}

// --- Pre/post-order ---

func TestPrePostOrderPaperTree(t *testing.T) {
	tr := paperTree()
	res, err := PrePostOrder(tr, 0, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	wantPre, wantPost := seq.PrePostOrder(tr, 0, &ops)
	for v := 0; v < tr.N(); v++ {
		if res.Pre[v] != wantPre[v] || res.Post[v] != wantPost[v] {
			t.Fatalf("vertex %d: pre=%d/%d post=%d/%d (vc/seq)",
				v, res.Pre[v], wantPre[v], res.Post[v], wantPost[v])
		}
	}
}

func TestPrePostOrderRandomTrees(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(seed%97+97)%97
		tr := graph.RandomTree(n, seed)
		root := VertexID(int(uint64(seed)>>3) % n)
		res, err := PrePostOrder(tr, root, Config{Workers: 4})
		if err != nil {
			return false
		}
		var ops seq.Ops
		wantPre, wantPost := seq.PrePostOrder(tr, root, &ops)
		for v := 0; v < n; v++ {
			if res.Pre[v] != wantPre[v] || res.Post[v] != wantPost[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPrePostOrderShapes(t *testing.T) {
	shapes := map[string]*graph.Graph{
		"path":        graph.Path(33),
		"star":        graph.Star(20),
		"binary":      graph.BalancedBinaryTree(63),
		"caterpillar": graph.CaterpillarTree(40),
		"two-nodes":   graph.Path(2),
		"one-node":    graph.Path(1),
	}
	for name, tr := range shapes {
		tr := tr
		t.Run(name, func(t *testing.T) {
			tr.SortAdjacency()
			res, err := PrePostOrder(tr, 0, Config{})
			if err != nil {
				t.Fatal(err)
			}
			var ops seq.Ops
			wantPre, wantPost := seq.PrePostOrder(tr, 0, &ops)
			for v := 0; v < tr.N(); v++ {
				if res.Pre[v] != wantPre[v] || res.Post[v] != wantPost[v] {
					t.Fatalf("vertex %d: pre=%d/%d post=%d/%d (vc/seq)",
						v, res.Pre[v], wantPre[v], res.Post[v], wantPost[v])
				}
			}
		})
	}
}

func TestPrePostOrderRootOutOfRange(t *testing.T) {
	if _, err := PrePostOrder(graph.Path(3), 5, Config{}); err == nil {
		t.Fatal("expected error for out-of-range root")
	}
}
