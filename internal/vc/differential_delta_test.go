package vc

import (
	"fmt"
	"reflect"
	"testing"

	"vcgraph/internal/async"
	"vcgraph/internal/blockcentric"
	"vcgraph/internal/bsp"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	rt "vcgraph/internal/runtime"
)

// Delta-cadence differential suite: the fault matrix of
// differential_test.go rerun with checkpoints stored as dirty-set
// delta chains (CheckpointEvery=1, FullSnapshotEvery=3), so saves land
// at steps 1 (full), 2 (delta), 3 (delta), 4 (full), ... Every run —
// fault-free, crash-mid-chain, corrupt-delta, corrupt-base — must stay
// byte-identical to the engine's full-snapshot fault-free baseline,
// and corrupting a frame must invalidate exactly the frames that
// depend on it.

const (
	deltaCK   = 1 // checkpoint every barrier: saves land at steps 1, 2, 3, ...
	deltaFull = 3 // every third frame full: 1 full, 2 delta, 3 delta, 4 full, ...
)

// deltaCell is one engine × parallelism configuration of a workload,
// run under an explicit checkpoint and full-snapshot cadence.
type deltaCell struct {
	name string
	// epochSaves marks engines that checkpoint after the barrier's
	// fault check (the asynchronous engine): the newest save a crash at
	// barrier k sees is the step k-1 one, so their crash step shifts by
	// one to read the same three-frame chain as the barrier engines.
	epochSaves bool
	run        func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error)
}

// deltaCase is a fault plan against the delta chain plus the exact
// recovery accounting its firing must leave behind.
type deltaCase struct {
	name  string
	plan  func(cell deltaCell) *rt.FaultPlan
	check func(t *testing.T, r bsp.Recovery)
}

// deltaCrashStep picks the crash barrier so the recovery reads the
// chain 1 (full) → 2 (delta) → 3 (delta): barrier engines save frame k
// at the end of superstep k-1, so crash(3) already sees all three;
// epoch-save engines write after the crash check, so barrier 4 is the
// first to see frame 3.
func deltaCrashStep(cell deltaCell) int {
	if cell.epochSaves {
		return 4
	}
	return 3
}

func deltaCases() []deltaCase {
	return []deltaCase{
		{
			// Crash with a two-delta chain resident: rollback has to
			// reconstruct step 3 by applying frames 2 and 3 onto full
			// frame 1 — and nothing may be skipped or invalidated.
			name: "crash-mid-chain",
			plan: func(cell deltaCell) *rt.FaultPlan {
				return rt.PlanOf(rt.Crash(deltaCrashStep(cell)))
			},
			check: func(t *testing.T, r bsp.Recovery) {
				if r.Rollbacks == 0 || r.DeltaCheckpointsSaved == 0 {
					t.Errorf("chain crash: rollbacks=%d deltas=%d, want both > 0", r.Rollbacks, r.DeltaCheckpointsSaved)
				}
				if r.CorruptedCheckpoints != 0 || r.InvalidatedCheckpoints != 0 {
					t.Errorf("clean chain restore skipped frames: %+v", r)
				}
			},
		},
		{
			// The mid-chain delta (frame 2) is silently corrupt: recovery
			// must count it once, invalidate the still-readable dependent
			// frame 3, and fall back to the full frame at step 1.
			name: "corrupt-delta-mid-chain",
			plan: func(cell deltaCell) *rt.FaultPlan {
				return rt.PlanOf(rt.CorruptCheckpoint(2), rt.Crash(deltaCrashStep(cell)))
			},
			check: func(t *testing.T, r bsp.Recovery) {
				if r.CorruptedCheckpoints != 1 || r.InvalidatedCheckpoints != 1 {
					t.Errorf("corrupt mid-chain delta: corrupted=%d invalidated=%d, want 1/1", r.CorruptedCheckpoints, r.InvalidatedCheckpoints)
				}
				if r.Rollbacks == 0 {
					t.Errorf("corrupt mid-chain delta: no rollback recorded: %+v", r)
				}
			},
		},
		{
			// The base full frame is corrupt: the entire generation is
			// unreadable — both dependent deltas are invalidated and the
			// engine restarts from scratch.
			name: "corrupt-base-full",
			plan: func(cell deltaCell) *rt.FaultPlan {
				return rt.PlanOf(rt.CorruptCheckpoint(1), rt.Crash(deltaCrashStep(cell)))
			},
			check: func(t *testing.T, r bsp.Recovery) {
				if r.CorruptedCheckpoints != 1 || r.InvalidatedCheckpoints != 2 {
					t.Errorf("corrupt base full: corrupted=%d invalidated=%d, want 1/2", r.CorruptedCheckpoints, r.InvalidatedCheckpoints)
				}
				if r.Rollbacks == 0 {
					t.Errorf("corrupt base full: no rollback recorded: %+v", r)
				}
			},
		},
		{
			// A message batch lost in transit at superstep 1 forces a
			// rollback that restores through whatever chain is resident.
			name: "drop-lane-mid-chain",
			plan: func(cell deltaCell) *rt.FaultPlan {
				return rt.PlanOf(rt.DropLane(1, 0, 0))
			},
			check: func(t *testing.T, r bsp.Recovery) {
				if r.DroppedLanes == 0 || r.Rollbacks == 0 {
					t.Errorf("dropped lane under delta cadence: dropped=%d rollbacks=%d, want both > 0", r.DroppedLanes, r.Rollbacks)
				}
			},
		},
	}
}

// runDeltaDifferential drives each cell through the delta fault matrix.
// The fault-free full-snapshot run is the baseline (its agreement with
// the sequential oracle is asserted by differential_test.go); the
// fault-free delta run and every faulted delta run must match it
// byte for byte.
func runDeltaDifferential(t *testing.T, cells []deltaCell) {
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			base, _, err := cell.run(0, 0, nil)
			if err != nil {
				t.Fatalf("fault-free full run: %v", err)
			}

			t.Run("fault-free-delta", func(t *testing.T) {
				got, st, err := cell.run(deltaCK, deltaFull, nil)
				if err != nil {
					t.Fatalf("fault-free delta run: %v", err)
				}
				if !reflect.DeepEqual(got, base) {
					t.Fatalf("delta cadence changed fault-free output\nrecovery: %+v", st.Recovery)
				}
				r := st.Recovery
				if r.Faulted() {
					t.Fatalf("fault-free delta run reports recovery activity: %+v", r)
				}
				if r.DeltaCheckpointsSaved == 0 {
					t.Fatalf("delta cadence saved no delta frames: %+v", r)
				}
				if r.CheckpointBytesFull == 0 || r.CheckpointBytesDelta == 0 {
					t.Fatalf("checkpoint byte accounting empty: full=%d delta=%d", r.CheckpointBytesFull, r.CheckpointBytesDelta)
				}
			})

			for _, fc := range deltaCases() {
				t.Run(fc.name, func(t *testing.T) {
					got, st, err := cell.run(deltaCK, deltaFull, fc.plan(cell))
					if err != nil {
						t.Fatalf("faulted run: %v", err)
					}
					if !reflect.DeepEqual(got, base) {
						t.Fatalf("faulted output differs from fault-free run\nrecovery: %+v", st.Recovery)
					}
					fc.check(t, st.Recovery)
				})
			}

			// Seeded random plans under delta cadence: whatever mix a
			// seed generates — including corruption landing anywhere in
			// a chain — the output must not change.
			for seed := int64(1); seed <= 4; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					got, st, err := cell.run(deltaCK, deltaFull, rt.NewFaultPlan(seed))
					if err != nil {
						t.Fatalf("seeded run: %v", err)
					}
					if !reflect.DeepEqual(got, base) {
						t.Fatalf("seed %d output differs from fault-free run\nrecovery: %+v", seed, st.Recovery)
					}
				})
			}
		})
	}
}

func TestDeltaDifferentialConnectedComponents(t *testing.T) {
	g := graph.Grid(12, 12) // diameter 22: every chain position is exercised
	var cells []deltaCell
	for _, p := range []struct {
		name string
		part pregel.Partitioner
	}{{"hash", nil}, {"range", pregel.PartitionRange}} {
		for _, w := range []int{1, 3} {
			part, w := p.part, w
			cells = append(cells, deltaCell{
				name: fmt.Sprintf("pregel/%s/w%d", p.name, w),
				run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
					res, err := HashMinCC(g, Config{Workers: w, Partition: part, CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan})
					if err != nil {
						return nil, nil, err
					}
					return res.Color, res.Stats, nil
				},
			})
		}
	}
	for _, w := range []int{1, 3} {
		w := w
		cells = append(cells, deltaCell{
			name: fmt.Sprintf("gas/w%d", w),
			run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				labels, res, err := gas.ConnectedComponents(g, gas.Config{Workers: w, CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return labels, res.Stats, nil
			},
		})
	}
	cells = append(cells, deltaCell{
		name: "async", epochSaves: true,
		run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
			labels, res, err := async.ConnectedComponents(g, async.Config{CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return labels, res.Stats, nil
		},
	})
	for _, b := range []int{2, 3} {
		b := b
		cells = append(cells, deltaCell{
			name: fmt.Sprintf("blockcentric/b%d", b),
			run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				res, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: b, CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return res.Color, res.Stats, nil
			},
		})
	}
	runDeltaDifferential(t, cells)
}

func TestDeltaDifferentialSSSP(t *testing.T) {
	g := graph.Grid(12, 12)
	graph.RandomWeights(g, 3)
	const src = 0
	var cells []deltaCell
	for _, w := range []int{1, 3} {
		w := w
		cells = append(cells, deltaCell{
			name: fmt.Sprintf("pregel/w%d", w),
			run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				res, err := SSSP(g, src, Config{Workers: w, CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return res.Dist, res.Stats, nil
			},
		})
		cells = append(cells, deltaCell{
			name: fmt.Sprintf("gas/w%d", w),
			run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				dist, res, err := gas.SSSP(g, src, gas.Config{Workers: w, CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return dist, res.Stats, nil
			},
		})
	}
	cells = append(cells, deltaCell{
		name: "async", epochSaves: true,
		run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
			dist, res, err := async.SSSP(g, src, async.Config{CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return dist, res.Stats, nil
		},
	})
	for _, b := range []int{2, 3} {
		b := b
		cells = append(cells, deltaCell{
			name: fmt.Sprintf("blockcentric/b%d", b),
			run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				res, err := blockcentric.SSSP(g, src, blockcentric.Config{Blocks: b, CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return res.Dist, res.Stats, nil
			},
		})
	}
	runDeltaDifferential(t, cells)
}

func TestDeltaDifferentialPageRank(t *testing.T) {
	g := graph.RandomConnected(120, 360, 9)
	const alpha, k = 0.85, 20
	var cells []deltaCell
	for _, w := range []int{1, 3} {
		w := w
		cells = append(cells, deltaCell{
			name: fmt.Sprintf("pregel/w%d", w),
			run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				res, err := PageRank(g, alpha, k, Config{Workers: w, CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return res.Ranks, res.Stats, nil
			},
		})
		cells = append(cells, deltaCell{
			name: fmt.Sprintf("gas/w%d", w),
			run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				// Push pinned for the same reason as differential_test.go:
				// the transit-fault events must find batches to drop.
				ranks, res, err := gas.PageRank(g, alpha, 1e-10, gas.Config{Workers: w, CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan, Mode: rt.DirectionPush})
				if err != nil {
					return nil, nil, err
				}
				return ranks, res.Stats, nil
			},
		})
	}
	cells = append(cells, deltaCell{
		name: "async", epochSaves: true,
		run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
			ranks, res, err := async.PageRank(g, alpha, 1e-10, async.Config{CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return ranks, res.Stats, nil
		},
	})
	for _, b := range []int{2, 3} {
		b := b
		cells = append(cells, deltaCell{
			name: fmt.Sprintf("blockcentric/b%d", b),
			run: func(ck, fullEvery int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				res, err := blockcentric.PageRank(g, alpha, k, blockcentric.Config{Blocks: b, CheckpointEvery: ck, FullSnapshotEvery: fullEvery, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return res.Ranks, res.Stats, nil
			},
		})
	}
	runDeltaDifferential(t, cells)
}
