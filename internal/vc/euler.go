package vc

import (
	"fmt"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	"vcgraph/internal/seq"
)

// EulerTourResult holds the distributed Euler tour representation: for
// each vertex u and each neighbor v, Succ[u][v] = next_v(u), so the
// tour successor of directed edge (u,v) is (v, Succ[u][v]).
type EulerTourResult struct {
	Succ  []map[VertexID]VertexID
	Stats *bsp.Stats
}

type eulerMsg struct {
	From VertexID // the sender v
	Next VertexID // next_v(u), u = recipient
}

type eulerValue struct {
	succ map[VertexID]VertexID
}

type eulerProgram struct{}

func (eulerProgram) Init(g *graph.Graph, id VertexID) eulerValue {
	return eulerValue{}
}

func (eulerProgram) Compute(ctx *pregel.Context[eulerValue, eulerMsg], msgs []eulerMsg) {
	switch ctx.Superstep() {
	case 0:
		// Send <u, next_v(u)> to each neighbor u (adjacency is sorted).
		adj := ctx.OutEdges()
		for i, e := range adj {
			next := adj[(i+1)%len(adj)].Dst
			ctx.SendTo(e.Dst, eulerMsg{From: ctx.ID(), Next: next})
		}
		ctx.VoteToHalt()
	case 1:
		v := ctx.Value()
		v.succ = make(map[VertexID]VertexID, len(msgs))
		for _, m := range msgs {
			v.succ[m.From] = m.Next
		}
		ctx.VoteToHalt()
	}
}

func (eulerProgram) StateUnits(v *eulerValue) int64 { return int64(len(v.succ)) }

// EulerTour runs the 2-superstep vertex-centric Euler tour construction
// of Yan et al. (Table 1 row 8 — the one BPPA, work-optimal algorithm
// in the benchmark). The input must be a tree; adjacency is sorted by
// the construction's convention.
func EulerTour(t *graph.Graph, cfg Config) (*EulerTourResult, error) {
	if !t.IsTree() {
		return nil, fmt.Errorf("vc: EulerTour requires a tree (n=%d, m=%d)", t.N(), t.M())
	}
	t.SortAdjacency()
	eng := pregel.NewEngine[eulerValue, eulerMsg](t, eulerProgram{}, engineCfg[eulerMsg](cfg))
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &EulerTourResult{Succ: make([]map[VertexID]VertexID, t.N()), Stats: res.Stats}
	for v, val := range res.Values {
		out.Succ[v] = val.succ
	}
	return out, nil
}

// Walk materializes the tour as a sequence of 2(n-1) directed edges
// starting from root's first sorted neighbor; used for verification and
// by the traversal pipeline.
func (r *EulerTourResult) Walk(t *graph.Graph, root VertexID) []seq.DirEdge {
	if t.N() <= 1 {
		return nil
	}
	tour := make([]seq.DirEdge, 0, 2*(t.N()-1))
	cur := seq.DirEdge{U: root, V: t.Out[root][0].Dst}
	for i := 0; i < 2*(t.N()-1); i++ {
		tour = append(tour, cur)
		cur = seq.DirEdge{U: cur.V, V: r.Succ[cur.U][cur.V]}
	}
	return tour
}
