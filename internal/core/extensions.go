package core

import (
	"math"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
	"vcgraph/internal/vc"
)

// (Beyond these measured rows, the library implements further §3.8
// workloads without a formal verdict row: personalized PageRank by
// Monte Carlo walks and PPR-based link prediction — §3.8(4)'s "link
// prediction" — in internal/vc/ppr.go, verified against the exact
// terminal-distribution computation in internal/seq.)

// ExtensionExperiments is the registry's "Table 2": the same
// time-processor-product / BPPA methodology applied to the workloads
// the paper discusses outside Table 1 — the §3.8 subgraph-centric
// cases and the remaining classics. The expected verdicts here are the
// library's own analysis (documented per row), evaluated exactly like
// the paper's rows.
func ExtensionExperiments() []*Experiment {
	return []*Experiment{
		{
			ID: "X.01", Row: 21, Workload: "Triangle Counting",
			VCAlgo: "neighborhood exchange", VCComplexity: "O(Σd(v)²)",
			SeqAlgo: "oriented intersection", SeqComplexity: "O(m^1.5)",
			PaperMoreWork: false, PaperBPPA: false,
			Small: Scale{N: 200, M: 1500, Seed: 21}, Large: Scale{N: 800, M: 24000, Seed: 21},
			Notes: "§3.8(2) measured precisely: total WORK matches the sequential intersection (ratio flat ≈2), but the work arrives as Θ(Σ d(v)²) shipped messages — recv/deg fails P3, which is the actual subgraph-centric complaint (see the SubgraphOverhead ablation)",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.Random(sc.N, sc.M, sc.Seed)
				res, err := vc.Triangles(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.Triangles(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "X.02", Row: 22, Workload: "k-Core Decomposition",
			VCAlgo: "Montresor h-index refinement", VCComplexity: "O(m·rounds)",
			SeqAlgo: "Matula-Beck peeling", SeqComplexity: "O(m+n)",
			PaperMoreWork: false, PaperBPPA: false,
			Small: Scale{N: 512, Seed: 22}, Large: Scale{N: 8192, Seed: 22},
			Notes: "monotone estimates bound total updates by O(m), so work stays comparable (ratio flat ≈8) — but caterpillar trees cascade corrections one hop per superstep: Θ(n) rounds, Hash-Min's δ-driven P4 failure",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.CaterpillarTree(sc.N)
				res, err := vc.KCore(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.KCore(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "X.03", Row: 23, Workload: "HITS (Hubs & Authorities)",
			VCAlgo: "aggregator-normalized power iteration", VCComplexity: "O(mK)",
			SeqAlgo: "power iteration", SeqComplexity: "O(mK)",
			PaperMoreWork: false, PaperBPPA: false,
			Small: Scale{N: 512, M: 2048, Seed: 23}, Large: Scale{N: 8192, M: 32768, Seed: 23},
			Notes: "work-optimal like PageRank; fails P4 by the same absolute K > log n argument (K=20 fixed)",
			JudgeBPPA: func(small, large *bsp.Stats) bsp.BPPAVerdict {
				v := bsp.CheckBPPA(small, large)
				v.P4Supersteps = float64(v.SuperstepsLarge) <= math.Log2(float64(large.N))+1
				return v
			},
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.RandomDirected(sc.N, sc.M, sc.Seed)
				res, err := vc.HITS(g, 20, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.HITS(g, 20, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "X.04", Row: 24, Workload: "Diameter Estimate (Double Sweep)",
			VCAlgo: "two BFS waves", VCComplexity: "O(m)",
			SeqAlgo: "two sequential BFS", SeqComplexity: "O(m)",
			PaperMoreWork: false, PaperBPPA: false,
			Small: Scale{N: 256, Seed: 24}, Large: Scale{N: 16384, Seed: 24},
			Notes: "work-optimal contrast to row 1's exact flooding, but each wave still takes Θ(δ) = Θ(√n) supersteps on a grid (P4 fails)",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				side := int(math.Round(math.Sqrt(float64(sc.N))))
				g := graph.Grid(side, side)
				res, err := vc.DoubleSweepDiameter(g, graph.NoVertex, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				d1, _ := seq.BFS(g, 0, &ops)
				far := graph.VertexID(0)
				for v, d := range d1 {
					if d > d1[far] {
						far = graph.VertexID(v)
					}
				}
				seq.BFS(g, far, &ops)
				return measurement(Scale{N: g.N()}, g.M(), res.Stats, &ops), nil
			},
		},
	}
}
