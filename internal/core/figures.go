package core

import (
	"fmt"
	"sort"
	"strings"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
	"vcgraph/internal/vc"
)

// Figure reproductions: the paper's five figures are illustrative
// diagrams of algorithm mechanics; each Figure function regenerates the
// illustrated behaviour as a deterministic textual trace from a live
// run of the corresponding vertex-centric algorithm.

// Figure1 traces the eccentricity/diameter algorithm of §3.1 on a small
// graph: which origins every vertex first hears about at each
// superstep, each vertex's eccentricity, and the diameter-equals-
// supersteps-minus-one relation the paper highlights.
func Figure1() (string, error) {
	// The 7-vertex example: two triangles bridged by a path.
	g := graph.New(7, false)
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {4, 6}} {
		g.AddEdge(e[0], e[1])
	}
	g.SortAdjacency()
	res, err := vc.Diameter(g, vc.Config{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — vertex-centric diameter computation (eccentricity flooding)\n")
	fmt.Fprintf(&b, "graph: 7 vertices, %d edges (two triangles bridged by a path)\n\n", g.M())
	fmt.Fprintf(&b, "superstep 0: every vertex originates its unique ID to its neighbors\n")
	maxEcc := int32(0)
	for _, e := range res.Ecc {
		if e > maxEcc {
			maxEcc = e
		}
	}
	for s := int32(1); s <= maxEcc; s++ {
		fmt.Fprintf(&b, "superstep %d:", s)
		for v := 0; v < g.N(); v++ {
			var got []string
			for o := 0; o < g.N(); o++ {
				if res.Dist[v][o] == s {
					got = append(got, fmt.Sprint(o))
				}
			}
			if len(got) > 0 {
				fmt.Fprintf(&b, "  v%d+={%s}", v, strings.Join(got, ","))
			}
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "superstep %d: no new IDs anywhere — algorithm terminates\n\n", maxEcc+1)
	for v, e := range res.Ecc {
		fmt.Fprintf(&b, "eccentricity(v%d) = %d\n", v, e)
	}
	fmt.Fprintf(&b, "\ndiameter = max eccentricity = %d = supersteps(%d) - 2 (originate + final empty round)\n",
		res.Diameter, res.Stats.NumSupersteps())
	return b.String(), nil
}

func renderForest(d []vc.VertexID) string {
	var b strings.Builder
	// Group children under roots for a compact view.
	children := map[vc.VertexID][]vc.VertexID{}
	var roots []vc.VertexID
	for v, p := range d {
		if vc.VertexID(v) == p {
			roots = append(roots, vc.VertexID(v))
		} else {
			children[p] = append(children[p], vc.VertexID(v))
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for i, r := range roots {
		if i > 0 {
			b.WriteString("  ")
		}
		kids := children[r]
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		if len(kids) == 0 {
			fmt.Fprintf(&b, "(%d)", r)
			continue
		}
		var ks []string
		for _, k := range kids {
			ks = append(ks, fmt.Sprint(k))
		}
		fmt.Fprintf(&b, "(%d <- %s)", r, strings.Join(ks, ","))
	}
	return b.String()
}

// Figure2 shows the forest structure of the S-V algorithm: the initial
// self-loop forest, the evolving rooted trees, and the final stars —
// the three states the paper's Figure 2 depicts.
func Figure2() (string, error) {
	g := graph.Path(8)
	_, snaps, err := vc.SVCCTrace(g, vc.Config{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — forest structure of the S-V algorithm on a path of 8 vertices\n")
	fmt.Fprintf(&b, "notation: (root <- children); a bare (v) is a self-loop root D[v]=v\n\n")
	for r, d := range snaps {
		label := fmt.Sprintf("round %d start", r+1)
		if r == 0 {
			label = "initial (all self-loops)"
		}
		fmt.Fprintf(&b, "%-26s %s\n", label+":", renderForest(d))
	}
	fmt.Fprintf(&b, "\nfinal: every component is a star rooted at its smallest vertex\n")
	return b.String(), nil
}

// Figure3 traces tree hooking, star hooking and shortcutting across one
// round of S-V by diffing consecutive pointer snapshots.
func Figure3() (string, error) {
	// A graph with two initial trees that must hook and shortcut:
	// two stars joined by an edge between leaves.
	g := graph.New(8, false)
	for _, e := range [][2]graph.VertexID{{0, 2}, {0, 3}, {1, 4}, {1, 5}, {3, 6}, {5, 7}, {6, 7}} {
		g.AddEdge(e[0], e[1])
	}
	g.SortAdjacency()
	res, snaps, err := vc.SVCCTrace(g, vc.Config{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — tree hooking, star hooking, and shortcutting (S-V round trace)\n\n")
	for r := 0; r < len(snaps); r++ {
		fmt.Fprintf(&b, "round %d: %s\n", r, renderForest(snaps[r]))
		if r+1 < len(snaps) {
			for v := range snaps[r] {
				if snaps[r][v] != snaps[r+1][v] {
					fmt.Fprintf(&b, "         D[%d]: %d -> %d\n", v, snaps[r][v], snaps[r+1][v])
				}
			}
		}
	}
	fmt.Fprintf(&b, "\nspanning-forest hook edges: %v\n", res.TreeEdges)
	fmt.Fprintf(&b, "pointer values only ever decrease (hooking onto smaller D), as §3.3.2 requires\n")
	return b.String(), nil
}

// Figure4 reproduces the Euler tour and list-ranking example of §3.4 on
// the paper's 7-vertex tree: the tour, the tour-position ranking, the
// forward/backward marking, and the pre/post-order numbers.
func Figure4() (string, error) {
	t := graph.New(7, false)
	for _, e := range [][2]graph.VertexID{{0, 1}, {0, 5}, {0, 6}, {1, 2}, {1, 3}, {1, 4}} {
		t.AddEdge(e[0], e[1])
	}
	t.SortAdjacency()
	et, err := vc.EulerTour(t, vc.Config{})
	if err != nil {
		return "", err
	}
	tour := et.Walk(t, 0)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — Euler tour and list-ranking on the paper's example tree\n")
	fmt.Fprintf(&b, "tree: 0-{1,5,6}, 1-{2,3,4}; first(0)=1, last(0)=6, next_0(1)=5, next_0(6)=1\n\n")
	fmt.Fprintf(&b, "Euler tour (%d directed edges):\n  ", len(tour))
	for i, e := range tour {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s", e)
	}
	fmt.Fprintln(&b)

	// List-ranking demo: rank the tour as a list with val=1.
	pre, post, err := traversalNumbers(t)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nper-vertex traversal numbers from two list-ranking passes:\n")
	fmt.Fprintf(&b, "  vertex: ")
	for v := 0; v < t.N(); v++ {
		fmt.Fprintf(&b, "%4d", v)
	}
	fmt.Fprintf(&b, "\n  pre:    ")
	for v := 0; v < t.N(); v++ {
		fmt.Fprintf(&b, "%4d", pre[v])
	}
	fmt.Fprintf(&b, "\n  post:   ")
	for v := 0; v < t.N(); v++ {
		fmt.Fprintf(&b, "%4d", post[v])
	}
	fmt.Fprintln(&b)
	var ops seq.Ops
	wantPre, wantPost := seq.PrePostOrder(t, 0, &ops)
	agree := true
	for v := 0; v < t.N(); v++ {
		if pre[v] != wantPre[v] || post[v] != wantPost[v] {
			agree = false
		}
	}
	fmt.Fprintf(&b, "\nsequential DFS agreement: %v\n", agree)
	return b.String(), nil
}

func traversalNumbers(t *graph.Graph) (pre, post []int32, err error) {
	res, err := vc.PrePostOrder(t, 0, vc.Config{})
	if err != nil {
		return nil, nil, err
	}
	return res.Pre, res.Post, nil
}

// Figure5 reproduces the conjoined-tree of Min-Edge-Picking: each
// vertex points at its minimum-weight edge, the mutual pair forms the
// cycle, and the smaller endpoint becomes the super-vertex.
func Figure5() (string, error) {
	// Weighted graph shaped like the paper's example: min-edge picks
	// form one conjoined tree whose 2-cycle decides the super-vertex.
	g := graph.New(7, false)
	g.AddWeightedEdge(0, 2, 3)
	g.AddWeightedEdge(1, 2, 4)
	g.AddWeightedEdge(2, 5, 1)
	g.AddWeightedEdge(5, 3, 7)
	g.AddWeightedEdge(5, 6, 2)
	g.AddWeightedEdge(6, 4, 5)
	g.AddWeightedEdge(3, 4, 9)
	g.SortAdjacency()

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — conjoined-tree formed by Min-Edge-Picking\n\n")
	pointer := make([]graph.VertexID, g.N())
	for v := 0; v < g.N(); v++ {
		best := graph.NoVertex
		bw := 0.0
		for _, e := range g.Out[v] {
			if best == graph.NoVertex || e.W < bw || (e.W == bw && e.Dst < best) {
				best, bw = e.Dst, e.W
			}
		}
		pointer[v] = best
		fmt.Fprintf(&b, "vertex %d picks min edge -> %d (weight %.0f)\n", v, best, bw)
	}
	for v := 0; v < g.N(); v++ {
		u := pointer[v]
		if u != graph.NoVertex && pointer[u] == graph.VertexID(v) && graph.VertexID(v) < u {
			fmt.Fprintf(&b, "\ncycle: %d <-> %d (mutual picks); super-vertex = %d (smaller ID)\n", v, u, v)
		}
	}
	res, err := vc.MCST(g, vc.Config{})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nfull Boruvka MCST on this graph: weight %.0f, edges %v\n", res.Weight, res.Edges)
	var ops seq.Ops
	_, want := seq.MSTKruskalRadix(g, &ops)
	fmt.Fprintf(&b, "Kruskal agreement: %v (weight %.0f)\n", res.Weight == want, want)
	return b.String(), nil
}

// Figures runs all five figure reproductions in order.
func Figures() ([]string, error) {
	fns := []func() (string, error){Figure1, Figure2, Figure3, Figure4, Figure5}
	out := make([]string, 0, len(fns))
	for _, fn := range fns {
		s, err := fn()
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}
