package core

import (
	"strings"
	"testing"

	"vcgraph/internal/bsp"
	"vcgraph/internal/seq"
	"vcgraph/internal/vc"
)

func TestRegistryShape(t *testing.T) {
	exps := Experiments()
	if len(exps) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(exps))
	}
	seen := map[string]bool{}
	rows := map[int]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Row < 1 || e.Row > 20 || rows[e.Row] {
			t.Fatalf("bad/duplicate row %d", e.Row)
		}
		rows[e.Row] = true
		if e.Run == nil || e.Workload == "" || e.VCComplexity == "" || e.SeqComplexity == "" {
			t.Fatalf("experiment %s missing fields", e.ID)
		}
		if e.Small.N >= e.Large.N {
			t.Fatalf("experiment %s scales not increasing: %d >= %d", e.ID, e.Small.N, e.Large.N)
		}
	}
}

// TestPaperVerdictsEncoded pins the registry's expected verdicts to the
// paper's Table 1.
func TestPaperVerdictsEncoded(t *testing.T) {
	wantMoreWork := map[int]bool{
		1: false, 2: false, 3: true, 4: true, 5: true, 6: true, 7: true,
		8: false, 9: true, 10: true, 11: true, 12: true, 13: true, 14: true,
		15: false, 16: true, 17: false, 18: true, 19: true, 20: true,
	}
	wantBPPA := map[int]bool{
		8: true, 9: true, 14: true,
	}
	for _, e := range Experiments() {
		if e.PaperMoreWork != wantMoreWork[e.Row] {
			t.Errorf("row %d: PaperMoreWork = %v", e.Row, e.PaperMoreWork)
		}
		if e.PaperBPPA != wantBPPA[e.Row] {
			t.Errorf("row %d: PaperBPPA = %v", e.Row, e.PaperBPPA)
		}
	}
}

// TestExperimentsRunAtTinyScales executes every registered experiment
// at reduced scales to verify the runners themselves (graph building,
// both implementations, measurement plumbing) work end to end.
func TestExperimentsRunAtTinyScales(t *testing.T) {
	cfg := vc.Config{Workers: 2}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			sc := e.Small
			sc.N /= 4
			if sc.N < 16 {
				sc.N = 16
			}
			if sc.M > 0 {
				sc.M = sc.N * (e.Small.M / e.Small.N)
				if sc.M < sc.N {
					sc.M = sc.N
				}
			}
			m, err := e.Run(sc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.PT <= 0 || m.SeqOps <= 0 {
				t.Fatalf("degenerate measurement: %+v", m)
			}
			if m.VCStats == nil || m.VCStats.NumSupersteps() == 0 {
				t.Fatal("missing VC stats")
			}
		})
	}
}

// TestSelectedVerdictsAtFullScale runs a few cheap representative rows
// at their registered scales and checks the reproduced verdicts.
func TestSelectedVerdictsAtFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale verdicts are exercised by cmd/table1")
	}
	for _, id := range []string{"T1.02", "T1.03", "T1.08", "T1.09"} {
		outs, err := RunAll(vc.Config{Workers: 4}, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != 1 {
			t.Fatalf("filter returned %d outcomes", len(outs))
		}
		o := outs[0]
		if !o.MoreWorkRepro || !o.BPPARepro {
			t.Fatalf("%s verdicts not reproduced: morework %v/%v bppa %v/%v",
				id, o.MoreWork, o.Exp.PaperMoreWork, o.BPPA.OK(), o.Exp.PaperBPPA)
		}
	}
}

func TestRenderTable(t *testing.T) {
	small := &bsp.Stats{N: 10, Workers: 2, Supersteps: make([]bsp.SuperstepStats, 3)}
	large := &bsp.Stats{N: 40, Workers: 2, Supersteps: make([]bsp.SuperstepStats, 4)}
	o := &Outcome{
		Exp:    Experiments()[0],
		SmallM: bsp.Measurement{N: 10, PT: 100, SeqOps: 50, VCStats: small},
		LargeM: bsp.Measurement{N: 40, PT: 400, SeqOps: 210, VCStats: large},
	}
	o.BPPA = bsp.CheckBPPA(small, large)
	s := RenderTable([]*Outcome{o})
	for _, want := range []string{"T1.01", "Diameter", "ratio-S"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	d := RenderDetails([]*Outcome{o})
	if !strings.Contains(d, "P1(space)") {
		t.Fatalf("details missing BPPA evidence:\n%s", d)
	}
}

func TestCascadeSimIsQuadraticForVC(t *testing.T) {
	g, q := cascadeSim(64)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := vc.GraphSimulation(g, q, vc.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One collapse per superstep: supersteps track n.
	if ss := res.Stats.NumSupersteps(); ss < 60 {
		t.Fatalf("cascade resolved in %d supersteps; want ~n", ss)
	}
	// And the result still matches the sequential baseline.
	var ops seq.Ops
	want := seq.GraphSimulation(g, q, &ops)
	for u := range res.Match {
		if (res.Match[u] != 0) != want[0][u] {
			t.Fatalf("vertex %d: vc=%v seq=%v", u, res.Match[u] != 0, want[0][u])
		}
	}
}

func TestFiguresDeterministicAndComplete(t *testing.T) {
	a, err := Figures()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figures()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5 {
		t.Fatalf("%d figures, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("figure %d not deterministic", i+1)
		}
	}
	checks := map[int][]string{
		0: {"superstep 1", "diameter = max eccentricity = 4"},
		1: {"initial (all self-loops)", "star"},
		2: {"D[", "hook edges"},
		3: {"(0,1) (1,2) (2,1)", "sequential DFS agreement: true"},
		4: {"cycle: 2 <-> 5", "Kruskal agreement: true"},
	}
	for i, wants := range checks {
		for _, w := range wants {
			if !strings.Contains(a[i], w) {
				t.Fatalf("figure %d missing %q:\n%s", i+1, w, a[i])
			}
		}
	}
}

func TestGridSources(t *testing.T) {
	s := gridSources(100, 8)
	if len(s) != 8 || s[0] != 0 || s[7] != 87 {
		t.Fatalf("sources = %v", s)
	}
	if got := gridSources(3, 8); len(got) != 3 {
		t.Fatalf("clamped sources = %v", got)
	}
}

func TestExtensionRegistryShape(t *testing.T) {
	exps := ExtensionExperiments()
	if len(exps) != 4 {
		t.Fatalf("extension registry has %d experiments", len(exps))
	}
	for _, e := range exps {
		if e.Run == nil || e.ID == "" || e.Notes == "" {
			t.Fatalf("extension %s incomplete", e.ID)
		}
	}
}

func TestExtensionExperimentsRunAtTinyScales(t *testing.T) {
	cfg := vc.Config{Workers: 2}
	for _, e := range ExtensionExperiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			sc := e.Small
			sc.N /= 2
			if sc.N < 32 {
				sc.N = 32
			}
			if sc.M > 0 {
				sc.M = sc.N * (e.Small.M / e.Small.N)
			}
			m, err := e.Run(sc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.PT <= 0 || m.SeqOps <= 0 {
				t.Fatalf("degenerate measurement: %+v", m)
			}
		})
	}
}

func TestExtensionVerdictsReproduceAtFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("exercised by cmd/table1 -ext")
	}
	outs, err := RunExtensions(vc.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if !o.MoreWorkRepro || !o.BPPARepro {
			t.Fatalf("%s verdicts not reproduced: morework %v/%v bppa %v/%v",
				o.Exp.ID, o.MoreWork, o.Exp.PaperMoreWork, o.BPPA.OK(), o.Exp.PaperBPPA)
		}
	}
}

func TestSweepProducesMonotoneSizes(t *testing.T) {
	var exp *Experiment
	for _, e := range Experiments() {
		if e.ID == "T1.08" {
			exp = e
		}
	}
	points, err := Sweep(exp, 4, vc.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].M.N <= points[i-1].M.N {
			t.Fatalf("sizes not increasing: %d after %d", points[i].M.N, points[i-1].M.N)
		}
	}
	if points[0].M.N != exp.Small.N || points[3].M.N != exp.Large.N {
		t.Fatalf("endpoints %d..%d, want %d..%d", points[0].M.N, points[3].M.N, exp.Small.N, exp.Large.N)
	}
	csv := RenderSweepCSV(points)
	if !strings.Contains(csv, "T1.08") || !strings.Contains(csv, "supersteps") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}

func TestRenderCSVWellFormed(t *testing.T) {
	outs, err := RunAll(vc.Config{Workers: 2}, "T1.08")
	if err != nil {
		t.Fatal(err)
	}
	csv := RenderCSV(outs)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	if got, want := len(strings.Split(lines[0], ",")), len(strings.Split(lines[1], ",")); got != want {
		t.Fatalf("header has %d fields, row has %d", got, want)
	}
}
