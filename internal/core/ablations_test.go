package core

import (
	"strings"
	"testing"

	"vcgraph/internal/vc"
)

func TestCombinerAblation(t *testing.T) {
	s, err := CombinerAblation(300, 2000, vc.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "with combiner") || !strings.Contains(s, "results identical") {
		t.Fatalf("unexpected output:\n%s", s)
	}
}

func TestBandwidthSweepMonotone(t *testing.T) {
	s, err := BandwidthSweep(vc.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "g") || !strings.Contains(s, "16") {
		t.Fatalf("unexpected output:\n%s", s)
	}
}

func TestPartitionAblationIdenticalResults(t *testing.T) {
	s, err := PartitionAblation(vc.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "degree-balanced") {
		t.Fatalf("unexpected output:\n%s", s)
	}
}

func TestParadigmComparisonAgrees(t *testing.T) {
	s, err := ParadigmComparison(vc.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Hash-Min", "S-V", "block-centric", "identical results"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestSubgraphOverhead(t *testing.T) {
	s, err := SubgraphOverhead(vc.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "msgs/m") {
		t.Fatalf("unexpected output:\n%s", s)
	}
}

func TestRemainingAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by cmd/ablations")
	}
	t.Run("fcs", func(t *testing.T) {
		s, err := FCSAblation(vc.Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, "with FCS") {
			t.Fatalf("output:\n%s", s)
		}
	})
	t.Run("superstep-sharing", func(t *testing.T) {
		s, err := SuperstepSharingAblation(vc.Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, "shared supersteps") {
			t.Fatalf("output:\n%s", s)
		}
	})
	t.Run("model-comparison", func(t *testing.T) {
		s, err := ModelComparison(vc.Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, "GAS") {
			t.Fatalf("output:\n%s", s)
		}
	})
	t.Run("worker-sweep", func(t *testing.T) {
		s, err := WorkerSweep()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, "workers") {
			t.Fatalf("output:\n%s", s)
		}
	})
}
