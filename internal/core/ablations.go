package core

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"vcgraph/internal/async"
	"vcgraph/internal/blockcentric"
	"vcgraph/internal/bsp"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/plan"
	"vcgraph/internal/pregel"
	"vcgraph/internal/runtime"
	"vcgraph/internal/seq"
	"vcgraph/internal/vc"
)

// Ablations for the design choices the paper discusses: message
// combiners (one of the "algorithmic and system-specific optimization
// techniques" of §1), the bandwidth parameter g (footnote 1: "for
// higher values of g, the time-processor product would be even
// higher"), the number of processors P, and the §3.8 subgraph-centric
// communication overhead.

// CombinerAblation runs Hash-Min with and without its min-combiner on
// a dense random graph and reports the network volume the combiner
// removes.
func CombinerAblation(n, m int, cfg vc.Config) (string, error) {
	g := graph.Random(n, m, 33)
	with := cfg
	without := cfg
	without.NoCombiner = true
	// Pin push: this table prices what sender-side combining saves on
	// the wire, and the pull path (which a combiner also unlocks) would
	// zero the wire columns entirely. DirectionAblation measures that.
	with.Mode = runtime.DirectionPush
	without.Mode = runtime.DirectionPush
	a, err := vc.HashMinCC(g, with)
	if err != nil {
		return "", err
	}
	b, err := vc.HashMinCC(g, without)
	if err != nil {
		return "", err
	}
	for v := range a.Color {
		if a.Color[v] != b.Color[v] {
			return "", fmt.Errorf("combiner changed the result at vertex %d", v)
		}
	}
	var out strings.Builder
	fmt.Fprintf(&out, "Combiner ablation — Hash-Min on random n=%d m=%d\n", g.N(), g.M())
	fmt.Fprintf(&out, "%-14s %12s %18s %10s\n", "", "sent (raw)", "delivered (net)", "supersteps")
	fmt.Fprintf(&out, "%-14s %12d %18d %10d\n", "with combiner", a.Stats.TotalMessages, a.Stats.InboxDeliveries, a.Stats.NumSupersteps())
	fmt.Fprintf(&out, "%-14s %12d %18d %10d\n", "without", b.Stats.TotalMessages, b.Stats.InboxDeliveries, b.Stats.NumSupersteps())
	save := 1 - float64(a.Stats.InboxDeliveries)/float64(b.Stats.InboxDeliveries)
	fmt.Fprintf(&out, "combining removes %.0f%% of delivered message volume; results identical\n", save*100)
	return out.String(), nil
}

// DirectionAblation measures direction-optimizing execution: the same
// combiner-bearing algorithms under forced push, forced pull, and the
// auto heuristic (pull when the frontier exceeds n/20). Results must be
// byte-identical across modes — the pull gather replays push's fold
// order exactly — while the wire columns show what dense supersteps
// stop paying: pulled broadcasts are never materialized as messages, so
// h collapses to the boundary traffic.
func DirectionAblation(cfg vc.Config) (string, error) {
	pa := graph.PreferentialAttachment(5000, 3, 99)
	ws := graph.WattsStrogatz(4000, 2, 0.1, 99)
	modes := []runtime.DirectionMode{runtime.DirectionPush, runtime.DirectionAuto, runtime.DirectionPull}
	var out strings.Builder
	fmt.Fprintf(&out, "Direction ablation — push vs pull vs auto (threshold n/20)\n")
	fmt.Fprintf(&out, "%-22s %-6s %12s %8s %14s %14s\n", "algorithm", "mode", "supersteps", "pulled", "wire messages", "P·T")
	var prBase []float64
	for _, mode := range modes {
		c := cfg
		c.Mode = mode
		res, err := vc.PageRank(pa, 0.85, 10, c)
		if err != nil {
			return "", err
		}
		if prBase == nil {
			prBase = res.Ranks
		} else {
			for v := range prBase {
				if prBase[v] != res.Ranks[v] {
					return "", fmt.Errorf("direction mode %v changed PageRank at vertex %d", mode, v)
				}
			}
		}
		fmt.Fprintf(&out, "%-22s %-6s %12d %8d %14d %14.0f\n", "PageRank(K=10), PA",
			mode, res.Stats.NumSupersteps(), res.Stats.PulledSupersteps(),
			res.Stats.TotalMessages, res.Stats.MeasuredTPP())
	}
	var hmBase []graph.VertexID
	for _, mode := range modes {
		c := cfg
		c.Mode = mode
		res, err := vc.HashMinCC(ws, c)
		if err != nil {
			return "", err
		}
		if hmBase == nil {
			hmBase = res.Color
		} else {
			for v := range hmBase {
				if hmBase[v] != res.Color[v] {
					return "", fmt.Errorf("direction mode %v changed Hash-Min at vertex %d", mode, v)
				}
			}
		}
		fmt.Fprintf(&out, "%-22s %-6s %12d %8d %14d %14.0f\n", "Hash-Min, smallworld",
			mode, res.Stats.NumSupersteps(), res.Stats.PulledSupersteps(),
			res.Stats.TotalMessages, res.Stats.MeasuredTPP())
	}
	fmt.Fprintf(&out, "byte-identical results in every mode; pull erases the dense supersteps' wire\n")
	fmt.Fprintf(&out, "volume and auto pays it only while the frontier stays sparse\n")
	return out.String(), nil
}

// BandwidthSweep re-prices one algorithm's measured superstep loads
// under increasing bandwidth parameter g, reproducing footnote 1: the
// time-processor product of message-bound algorithms degrades with g
// while compute-bound ones barely move.
func BandwidthSweep(cfg vc.Config) (string, error) {
	// Message-bound: diameter flooding. Compute-bound-ish: PageRank.
	gd := graph.RandomConnected(400, 1200, 44)
	diam, err := vc.Diameter(gd, cfg)
	if err != nil {
		return "", err
	}
	gp := graph.PreferentialAttachment(4000, 3, 44)
	pr, err := vc.PageRank(gp, 0.85, 30, cfg)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	fmt.Fprintf(&out, "Bandwidth sweep — time-processor product P·T under rising g (L=1)\n")
	fmt.Fprintf(&out, "%-6s %18s %18s\n", "g", "diameter (msg-bound)", "pagerank")
	base1, base2 := 0.0, 0.0
	for _, gg := range []float64{1, 2, 4, 8, 16} {
		m := bsp.CostModel{G: gg, L: 1}
		p1 := m.TimeProcessor(diam.Stats)
		p2 := m.TimeProcessor(pr.Stats)
		if gg == 1 {
			base1, base2 = p1, p2
		}
		fmt.Fprintf(&out, "%-6.0f %12.0f (%4.1fx) %12.0f (%4.1fx)\n", gg, p1, p1/base1, p2, p2/base2)
	}
	fmt.Fprintf(&out, "the paper's footnote 1: higher g inflates message-heavy algorithms' products\n")
	return out.String(), nil
}

// WorkerSweep measures PageRank's time-processor product and wall time
// across processor counts: P·T grows with P whenever per-superstep
// load is imbalanced, while wall time only improves while the work
// parallelizes.
func WorkerSweep() (string, error) {
	g := graph.PreferentialAttachment(20000, 3, 55)
	var out strings.Builder
	fmt.Fprintf(&out, "Worker sweep — PageRank (K=10) on preferential-attachment n=%d m=%d\n", g.N(), g.M())
	fmt.Fprintf(&out, "%-8s %14s %12s\n", "workers", "P·T", "wall time")
	for _, w := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := vc.PageRank(g, 0.85, 10, vc.Config{Workers: w})
		if err != nil {
			return "", err
		}
		el := time.Since(start)
		fmt.Fprintf(&out, "%-8d %14.0f %12s\n", w, res.Stats.MeasuredTPP(), el.Round(time.Millisecond))
	}
	fmt.Fprintf(&out, "P·T rises with P (skewed degrees imbalance the per-worker max) while wall time\n")
	fmt.Fprintf(&out, "barely moves: synchronization overhead offsets the parallelism at this scale —\n")
	fmt.Fprintf(&out, "the McSherry observation the paper's introduction builds on\n")
	return out.String(), nil
}

// SubgraphOverhead measures §3.8's claim: triangle counting needs each
// vertex to see its neighbors' adjacency, so the vertex-centric
// message volume grows like Σ d(v)² while the sequential intersection
// cost does not.
func SubgraphOverhead(cfg vc.Config) (string, error) {
	var out strings.Builder
	fmt.Fprintf(&out, "Subgraph-centric overhead (§3.8) — triangle counting: what the vertex-centric\n")
	fmt.Fprintf(&out, "model must SHIP (messages carrying neighbor lists) vs what sequential code scans in place\n")
	fmt.Fprintf(&out, "%-22s %14s %10s %12s %12s\n", "graph", "vc messages", "msgs/m", "recv/deg", "seq ops")
	for _, sc := range []struct {
		n, m int
	}{{200, 1500}, {400, 6000}, {800, 24000}} {
		g := graph.Random(sc.n, sc.m, 66)
		res, err := vc.Triangles(g, cfg)
		if err != nil {
			return "", err
		}
		var ops seq.Ops
		seq.Triangles(g, &ops)
		fmt.Fprintf(&out, "n=%-6d m=%-10d %14d %10.1f %12.1f %12d\n",
			g.N(), g.M(), res.Stats.TotalMessages,
			float64(res.Stats.TotalMessages)/float64(g.M()),
			res.Stats.MaxRecvPerDeg, ops.N)
	}
	fmt.Fprintf(&out, "messages-per-edge grows with density (Θ(Σ d(v)²) shipped overall) and per-vertex\n")
	fmt.Fprintf(&out, "receive volume exceeds the O(d(v)) BPPA budget — the §3.8 communication overhead\n")
	return out.String(), nil
}

// PartitionAblation compares the three partitioning strategies on a
// degree-skewed graph: results are identical, but the measured
// superstep cost max(w, g·h, L) tracks the load imbalance each
// strategy leaves behind (§1's "graph partitioning" optimization).
func PartitionAblation(cfg vc.Config) (string, error) {
	g := graph.PreferentialAttachment(10000, 3, 77)
	var out strings.Builder
	fmt.Fprintf(&out, "Partitioning ablation — PageRank(K=10) on preferential-attachment n=%d m=%d, %d workers\n",
		g.N(), g.M(), 4)
	fmt.Fprintf(&out, "%-18s %14s %16s\n", "strategy", "P·T", "top rank vertex")
	strategies := []struct {
		name string
		p    pregel.Partitioner
	}{
		{"hash", pregel.PartitionHash},
		{"range", pregel.PartitionRange},
		{"degree-balanced", pregel.PartitionDegreeBalanced},
	}
	var topRank []float64
	for _, s := range strategies {
		c := cfg
		c.Workers = 4
		c.Partition = s.p
		res, err := vc.PageRank(g, 0.85, 10, c)
		if err != nil {
			return "", err
		}
		best, bestV := 0.0, 0
		for v, r := range res.Ranks {
			if r > best {
				best, bestV = r, v
			}
		}
		if topRank == nil {
			topRank = res.Ranks
		} else {
			for v := range topRank {
				// Equal up to float summation order (inbox order differs
				// across partitions).
				if diff := topRank[v] - res.Ranks[v]; diff > 1e-12 || diff < -1e-12 {
					return "", fmt.Errorf("partitioning changed PageRank at vertex %d", v)
				}
			}
		}
		fmt.Fprintf(&out, "%-18s %14.0f %16d\n", s.name, res.Stats.MeasuredTPP(), bestV)
	}
	fmt.Fprintf(&out, "identical results; range partitioning piles the low-ID hubs onto one worker\n")
	fmt.Fprintf(&out, "and pays for it in the per-superstep maxima\n")
	return out.String(), nil
}

// FCSAblation measures the "finishing computations serially"
// optimization of Salihoglu & Widom on a Hash-Min run with a long,
// thin active tail: a path over permuted IDs where only the global
// minimum's wavefront stays active after the first few supersteps.
func FCSAblation(cfg vc.Config) (string, error) {
	g := graph.PermutedPath(4096, 5)
	plain := cfg
	fcs := cfg
	fcs.FCS = 64
	a, err := vc.HashMinCC(g, plain)
	if err != nil {
		return "", err
	}
	b, err := vc.HashMinCC(g, fcs)
	if err != nil {
		return "", err
	}
	for v := range a.Color {
		if a.Color[v] != b.Color[v] {
			return "", fmt.Errorf("FCS changed the result at vertex %d", v)
		}
	}
	var out strings.Builder
	fmt.Fprintf(&out, "FCS ablation — Hash-Min on a permuted-ID path (n=%d), threshold 64\n", g.N())
	fmt.Fprintf(&out, "%-12s %12s %14s %14s\n", "", "supersteps", "messages", "P·T")
	fmt.Fprintf(&out, "%-12s %12d %14d %14.0f\n", "plain", a.Stats.NumSupersteps(), a.Stats.TotalMessages, a.Stats.MeasuredTPP())
	fmt.Fprintf(&out, "%-12s %12d %14d %14.0f\n", "with FCS", b.Stats.NumSupersteps(), b.Stats.TotalMessages, b.Stats.MeasuredTPP())
	fmt.Fprintf(&out, "identical results; FCS collapses the long single-wavefront tail into one serial step\n")
	return out.String(), nil
}

// ParadigmComparison measures the paper's concluding point: one model
// does not fit all computations. Connected components on a
// high-diameter graph, in three paradigms — vertex-centric Hash-Min
// (Θ(δ) supersteps), vertex-centric S-V (Θ(log n) rounds at much
// higher constant cost), and block-centric min-label (Θ(B) supersteps,
// boundary-only messages).
func ParadigmComparison(cfg vc.Config) (string, error) {
	g := graph.Path(4096)
	var out strings.Builder
	fmt.Fprintf(&out, "Paradigm comparison — connected components on a path (n=%d, δ=n-1)\n", g.N())
	fmt.Fprintf(&out, "%-26s %12s %14s %14s\n", "paradigm", "supersteps", "messages", "P·T")

	hm, err := vc.HashMinCC(g, cfg)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&out, "%-26s %12d %14d %14.0f\n", "vertex-centric Hash-Min",
		hm.Stats.NumSupersteps(), hm.Stats.TotalMessages, hm.Stats.MeasuredTPP())

	sv, err := vc.SVCC(g, cfg)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&out, "%-26s %12d %14d %14.0f\n", "vertex-centric S-V",
		sv.Stats.NumSupersteps(), sv.Stats.TotalMessages, sv.Stats.MeasuredTPP())

	asyncLabels, asyncRes, err := async.ConnectedComponents(g, async.Config{})
	if err != nil {
		return "", err
	}
	for v := range hm.Color {
		if asyncLabels[v] != hm.Color[v] {
			return "", fmt.Errorf("async CC disagrees at vertex %d", v)
		}
	}
	fmt.Fprintf(&out, "%-26s %12s %14d %14d\n", "async (GraphLab-style)", "-", asyncRes.Updates, asyncRes.Updates)

	for _, blocks := range []int{4, 16} {
		bc, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: blocks})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&out, "block-centric (B=%-3d)       %12d %14d %14.0f\n", blocks,
			bc.Stats.NumSupersteps(), bc.Stats.TotalMessages, bc.Stats.MeasuredTPP())
		for v := range hm.Color {
			if bc.Color[v] != hm.Color[v] {
				return "", fmt.Errorf("paradigms disagree at vertex %d", v)
			}
		}
	}
	fmt.Fprintf(&out, "identical results; asynchronous scheduling and the subgraph-centric view\n")
	fmt.Fprintf(&out, "both beat the synchronous vertex-centric model by orders of magnitude here —\n")
	fmt.Fprintf(&out, "the conclusion's case for supporting multiple paradigms in one system\n")
	return out.String(), nil
}

// ModelComparison runs PageRank-to-convergence in the synchronous
// vertex-centric model (push, every vertex active every superstep) and
// the gather-apply-scatter model (pull, delta-scheduled): same
// fixpoint, very different edge traffic — the §1 survey's reason the
// "more advanced vertex-centric models" exist.
func ModelComparison(cfg vc.Config) (string, error) {
	g := graph.PreferentialAttachment(20000, 3, 88)
	const eps = 1e-10
	prRes, iters, err := vc.PageRankConverge(g, 0.85, eps, cfg)
	if err != nil {
		return "", err
	}
	gasRanks, gasRes, err := gas.PageRank(g, 0.85, eps, gas.Config{Workers: 4})
	if err != nil {
		return "", err
	}
	for v := range gasRanks {
		if d := gasRanks[v] - prRes.Ranks[v]; d > 1e-6 || d < -1e-6 {
			return "", fmt.Errorf("models disagree at vertex %d", v)
		}
	}
	var out strings.Builder
	fmt.Fprintf(&out, "Model comparison — PageRank to convergence (eps=%g) on PA n=%d m=%d\n", eps, g.N(), g.M())
	fmt.Fprintf(&out, "%-26s %12s %16s\n", "model", "iterations", "edge work")
	fmt.Fprintf(&out, "%-26s %12d %16d\n", "Pregel (push, sync)", iters, prRes.Stats.TotalMessages)
	fmt.Fprintf(&out, "%-26s %12d %16d\n", "GAS (pull, delta-sched)", gasRes.Iterations, gasRes.Stats.TotalWork)
	fmt.Fprintf(&out, "same fixpoint; delta scheduling stops touching converged regions early\n")
	return out.String(), nil
}

// SuperstepSharingAblation measures the §1 "superstep sharing"
// optimization on multi-source betweenness: batching all sources into
// one engine run collapses Σ_s 2δ_s supersteps to max_s 2δ_s.
func SuperstepSharingAblation(cfg vc.Config) (string, error) {
	g := graph.Grid(24, 24)
	sources := make([]graph.VertexID, 12)
	for i := range sources {
		sources[i] = graph.VertexID(i * g.N() / len(sources))
	}
	per, err := vc.Betweenness(g, sources, cfg)
	if err != nil {
		return "", err
	}
	shared, err := vc.BetweennessShared(g, sources, cfg)
	if err != nil {
		return "", err
	}
	for v := range per.BC {
		if d := per.BC[v] - shared.BC[v]; d > 1e-6 || d < -1e-6 {
			return "", fmt.Errorf("superstep sharing changed bc at vertex %d", v)
		}
	}
	var out strings.Builder
	fmt.Fprintf(&out, "Superstep sharing — betweenness from %d sources on a 24x24 grid\n", len(sources))
	fmt.Fprintf(&out, "%-22s %12s %14s %14s\n", "", "supersteps", "messages", "P·T")
	fmt.Fprintf(&out, "%-22s %12d %14d %14.0f\n", "one run per source",
		per.Stats.NumSupersteps(), per.Stats.TotalMessages, per.Stats.MeasuredTPP())
	fmt.Fprintf(&out, "%-22s %12d %14d %14.0f\n", "shared supersteps",
		shared.Stats.NumSupersteps(), shared.Stats.TotalMessages, shared.Stats.MeasuredTPP())
	fmt.Fprintf(&out, "identical centralities; sharing trades K-fold vertex state for Σδ -> maxδ latency\n")
	return out.String(), nil
}

// Ablations runs every ablation in order.
// RecoveryCostSweep measures the classic fault-tolerance trade-off the
// paper's cost model prices: frequent checkpoints cost snapshot writes,
// sparse ones cost redone supersteps after a rollback. One crash is
// injected mid-run and the checkpoint interval swept; every recovered
// run must reproduce the fault-free result exactly.
func RecoveryCostSweep(cfg vc.Config) (string, error) {
	prGraph := graph.PreferentialAttachment(2000, 3, 8)
	ssspGraph := graph.Grid(40, 40)
	graph.RandomWeights(ssspGraph, 9)
	workloads := []struct {
		name string
		run  func(c vc.Config) (any, *bsp.Stats, error)
	}{
		{"PageRank, powerlaw n=2000", func(c vc.Config) (any, *bsp.Stats, error) {
			res, err := vc.PageRank(prGraph, 0.85, 30, c)
			if err != nil {
				return nil, nil, err
			}
			return res.Ranks, res.Stats, nil
		}},
		{"SSSP, weighted 40x40 grid", func(c vc.Config) (any, *bsp.Stats, error) {
			res, err := vc.SSSP(ssspGraph, 0, c)
			if err != nil {
				return nil, nil, err
			}
			return res.Dist, res.Stats, nil
		}},
	}
	const crashStep = 21
	var out strings.Builder
	fmt.Fprintf(&out, "Recovery cost — one crash at superstep %d, checkpoint interval swept\n", crashStep)
	for _, w := range workloads {
		clean, cleanStats, err := w.run(cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&out, "%s (%d supersteps fault-free)\n", w.name, cleanStats.NumSupersteps())
		fmt.Fprintf(&out, "  %-10s %12s %10s %18s\n", "interval", "checkpoints", "rollbacks", "redone supersteps")
		for _, k := range []int{1, 2, 4, 8, 16} {
			c := cfg
			c.CheckpointEvery = k
			c.Faults = runtime.PlanOf(runtime.Crash(crashStep))
			got, stats, err := w.run(c)
			if err != nil {
				return "", err
			}
			if !reflect.DeepEqual(got, clean) {
				return "", fmt.Errorf("recovery changed the %s result at interval %d", w.name, k)
			}
			rec := stats.Recovery
			fmt.Fprintf(&out, "  %-10d %12d %10d %18d\n", k, rec.CheckpointsSaved, rec.Rollbacks, rec.RedoneSupersteps)
		}
	}
	out.WriteString("results byte-identical to the fault-free run at every interval\n")
	return out.String(), nil
}

// CheckpointCompactionSweep prices the other axis of the checkpoint
// trade-off: with the interval pinned to the safest cadence (a frame
// every superstep), the full-snapshot cadence is swept instead — every
// save full (the legacy store) versus dirty-set delta chains with a
// full frame every Nth save. The workload is SSSP on a weighted grid,
// whose frontier collapses to a sparse wave, so full frames re-copy
// the whole distance array to record a few hundred relaxations. One
// crash lands mid-run so every row also proves rollback through a
// delta chain reproduces the fault-free result exactly.
func CheckpointCompactionSweep(cfg vc.Config) (string, error) {
	g := graph.Grid(60, 60)
	graph.RandomWeights(g, 9)
	run := func(c vc.Config) (any, *bsp.Stats, error) {
		res, err := vc.SSSP(g, 0, c)
		if err != nil {
			return nil, nil, err
		}
		return res.Dist, res.Stats, nil
	}
	clean, cleanStats, err := run(cfg)
	if err != nil {
		return "", err
	}
	const crashStep = 21
	var out strings.Builder
	fmt.Fprintf(&out, "Checkpoint compaction — SSSP, weighted 60x60 grid (%d supersteps), checkpoint every superstep, crash at %d, full-snapshot cadence swept\n",
		cleanStats.NumSupersteps(), crashStep)
	fmt.Fprintf(&out, "  %-12s %8s %8s %14s %14s %10s\n", "full-every", "fulls", "deltas", "bytes full", "bytes delta", "vs all-full")
	var allFull int64
	for _, n := range []int{0, 2, 4, 8, 16} {
		c := cfg
		c.CheckpointEvery = 1
		c.FullSnapshotEvery = n
		c.Faults = runtime.PlanOf(runtime.Crash(crashStep))
		got, stats, err := run(c)
		if err != nil {
			return "", err
		}
		if !reflect.DeepEqual(got, clean) {
			return "", fmt.Errorf("delta-chain recovery changed the SSSP result at full-snapshot cadence %d", n)
		}
		rec := stats.Recovery
		total := rec.CheckpointBytesFull + rec.CheckpointBytesDelta
		if n == 0 {
			allFull = total
		}
		fmt.Fprintf(&out, "  %-12d %8d %8d %14d %14d %9.2fx\n",
			n, rec.CheckpointsSaved-rec.DeltaCheckpointsSaved, rec.DeltaCheckpointsSaved,
			rec.CheckpointBytesFull, rec.CheckpointBytesDelta, float64(allFull)/float64(total))
	}
	out.WriteString("results byte-identical to the fault-free run at every cadence\n")
	return out.String(), nil
}

// PlannerAblation pits the adaptive plan layer against every fixed
// engine choice on workloads with opposing winners: regular structures
// where block-centric collapses propagation, and skewed structures
// where pregel with degree-balanced partitions wins. Fixed configs run
// through the same auto harness via a one-entry script, so the only
// difference is who picked the plan. The acceptance bar (auto within
// 10% of the best fixed config everywhere, and at least 1.5x better
// than the worst on two or more workloads) is enforced, not just
// reported — drifting planner rules fail the ablation run.
func PlannerAblation(cfg vc.Config) (string, error) {
	type workload struct {
		name string
		g    *graph.Graph
		algo string
	}
	workloads := []workload{
		{"pagerank/powerlaw", graph.PreferentialAttachment(4000, 3, 31), "pagerank"},
		{"cc/path", graph.Path(4096), "cc"},
		{"cc/powerlaw", graph.PreferentialAttachment(4000, 3, 32), "cc"},
		{"sssp/grid", weighted(graph.Grid(48, 48), 33), "sssp"},
		{"sssp/powerlaw", weighted(graph.PreferentialAttachment(4000, 3, 34), 34), "sssp"},
	}
	fixed := []plan.Plan{
		{Engine: plan.EnginePregel, Partition: plan.PartitionHash, Mode: "auto"},
		{Engine: plan.EngineGAS, Partition: plan.PartitionHash, Mode: "auto"},
		{Engine: plan.EngineBlockcentric, Partition: plan.PartitionRange, Mode: "auto"},
	}
	var out strings.Builder
	fmt.Fprintf(&out, "Planner ablation — adaptive plan layer vs every fixed engine (P·T, lower is better)\n")
	fmt.Fprintf(&out, "%-18s %14s %14s %14s %14s  %s\n",
		"workload", "pregel", "gas", "blockcentric", "auto", "auto picked")
	beatWorst := 0
	for _, w := range workloads {
		runPlan := func(script []plan.Decision) (float64, *vc.AutoResult, error) {
			acfg := vc.AutoConfig{Config: cfg, Script: script}
			var ar *vc.AutoResult
			var err error
			switch w.algo {
			case "pagerank":
				_, ar, err = vc.PageRankAuto(w.g, 0.85, 20, acfg)
			case "cc":
				_, ar, err = vc.HashMinCCAuto(w.g, acfg)
			case "sssp":
				_, ar, err = vc.SSSPAuto(w.g, 0, acfg)
			}
			if err != nil {
				return 0, nil, err
			}
			return ar.Stats.MeasuredTPP(), ar, nil
		}
		tpps := make([]float64, len(fixed))
		for i, f := range fixed {
			tpp, _, err := runPlan([]plan.Decision{{Plan: f, Reason: "fixed"}})
			if err != nil {
				return "", fmt.Errorf("%s on fixed %s: %w", w.name, f.Engine, err)
			}
			tpps[i] = tpp
		}
		autoTPP, ar, err := runPlan(nil)
		if err != nil {
			return "", fmt.Errorf("%s on auto: %w", w.name, err)
		}
		best, worst := tpps[0], tpps[0]
		for _, t := range tpps[1:] {
			if t < best {
				best = t
			}
			if t > worst {
				worst = t
			}
		}
		picked := ar.Decisions[0].Plan.Engine
		if len(ar.Decisions) > 1 {
			picked += "->" + ar.Decisions[len(ar.Decisions)-1].Plan.Engine
		}
		fmt.Fprintf(&out, "%-18s %14.0f %14.0f %14.0f %14.0f  %s\n",
			w.name, tpps[0], tpps[1], tpps[2], autoTPP, picked)
		if autoTPP > 1.10*best {
			return "", fmt.Errorf("planner ablation: %s: auto P·T %.0f is more than 10%% over best fixed %.0f",
				w.name, autoTPP, best)
		}
		if 1.5*autoTPP <= worst {
			beatWorst++
		}
	}
	if beatWorst < 2 {
		return "", fmt.Errorf("planner ablation: auto beat the worst fixed config by >=1.5x on only %d workloads, want >= 2", beatWorst)
	}
	fmt.Fprintf(&out, "auto within 10%% of the best fixed config on every workload; >=1.5x over the worst on %d of %d\n",
		beatWorst, len(workloads))
	return out.String(), nil
}

// weighted assigns seeded random weights (for SSSP workloads).
func weighted(g *graph.Graph, seed int64) *graph.Graph {
	graph.RandomWeights(g, seed)
	return g
}

func Ablations(cfg vc.Config) ([]string, error) {
	var outs []string
	s, err := CombinerAblation(2000, 20000, cfg)
	if err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = DirectionAblation(cfg); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = BandwidthSweep(cfg); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = WorkerSweep(); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = PartitionAblation(cfg); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = SubgraphOverhead(cfg); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = SuperstepSharingAblation(cfg); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = ModelComparison(cfg); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = FCSAblation(cfg); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = ParadigmComparison(cfg); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = RecoveryCostSweep(cfg); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = CheckpointCompactionSweep(cfg); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	if s, err = PlannerAblation(cfg); err != nil {
		return outs, err
	}
	outs = append(outs, s)
	return outs, nil
}
