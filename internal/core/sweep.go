package core

import (
	"fmt"
	"math"
	"strings"

	"vcgraph/internal/bsp"
	"vcgraph/internal/vc"
)

// Scaling sweeps: where cmd/table1 judges each row from two sizes, a
// sweep runs a row at a geometric series of sizes and emits the full
// growth curve — the library's analogue of a scaling figure. Output is
// CSV: one line per (experiment, size) with the measured work on both
// sides and the BSP evidence.

// SweepPoint is one measured size of one experiment.
type SweepPoint struct {
	Exp   *Experiment
	Scale Scale
	M     bsp.Measurement
}

// Sweep runs the experiment at `points` geometrically spaced sizes
// from Small to Large (inclusive), scaling N (and M proportionally).
func Sweep(e *Experiment, points int, cfg vc.Config) ([]SweepPoint, error) {
	if points < 2 {
		points = 2
	}
	out := make([]SweepPoint, 0, points)
	ratio := float64(e.Large.N) / float64(e.Small.N)
	for i := 0; i < points; i++ {
		f := math.Pow(ratio, float64(i)/float64(points-1))
		sc := Scale{
			N:    int(float64(e.Small.N) * f),
			Seed: e.Small.Seed,
		}
		if e.Small.M > 0 {
			sc.M = int(float64(e.Small.M) * f)
		}
		m, err := e.Run(sc, cfg)
		if err != nil {
			return out, fmt.Errorf("%s at n=%d: %w", e.ID, sc.N, err)
		}
		out = append(out, SweepPoint{Exp: e, Scale: sc, M: m})
	}
	return out, nil
}

// RenderSweepCSV emits sweep points as CSV.
func RenderSweepCSV(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("id,workload,n,m,pt,seq_ops,ratio,supersteps,messages,state_per_deg,recv_per_deg\n")
	for _, p := range points {
		st := p.M.VCStats
		fmt.Fprintf(&b, "%s,%q,%d,%d,%.0f,%.0f,%.4f,%d,%d,%.2f,%.2f\n",
			p.Exp.ID, p.Exp.Workload, p.M.N, p.M.M,
			p.M.PT, p.M.SeqOps, p.M.Ratio(),
			st.NumSupersteps(), st.TotalMessages,
			st.MaxStatePerDeg, st.MaxRecvPerDeg)
	}
	return b.String()
}
