package core

import (
	"math"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
	"vcgraph/internal/vc"
)

// The experiment registry: one entry per Table 1 row. Workloads are
// chosen to expose the asymptotics behind each verdict (see the Notes
// fields and DESIGN.md §4); scales are a 16–64x spread so that log-
// factor growth clears bsp.GrowthSlack.

func measurement(sc Scale, m int, stats *bsp.Stats, ops *seq.Ops) bsp.Measurement {
	return bsp.Measurement{
		N:       sc.N,
		M:       m,
		PT:      stats.MeasuredTPP(),
		SeqOps:  float64(ops.N),
		VCStats: stats,
	}
}

// cascadeSim builds the adversarial data graph for the simulation rows:
// a reversed path of A-labeled vertices (v_i -> v_{i-1}) whose matchSets
// collapse one per superstep starting at v_0, plus a hub adjacent to
// every path vertex that must rescan its whole child list after every
// collapse, and a 2-cycle partner keeping the hub alive. This realizes
// the Θ(m) supersteps × Θ(m) per-superstep work behind the paper's
// O(m²(n_q+m_q)) bound. The query is the single node A with a self-loop.
func cascadeSim(n int) (*graph.Graph, *graph.Graph) {
	k := n - 2 // path vertices; hub = n-2, partner = n-1
	g := graph.New(n, true)
	g.Labels = make([]string, n)
	for i := range g.Labels {
		g.Labels[i] = "A"
	}
	for i := 1; i < k; i++ {
		g.AddEdge(graph.VertexID(i), graph.VertexID(i-1))
	}
	hub := graph.VertexID(n - 2)
	partner := graph.VertexID(n - 1)
	for i := 0; i < k; i++ {
		g.AddEdge(hub, graph.VertexID(i))
	}
	g.AddEdge(hub, partner)
	g.AddEdge(partner, hub)
	g.EnsureIn()
	g.SortAdjacency()

	q := graph.New(1, true)
	q.Labels = []string{"A"}
	q.AddEdge(0, 0)
	q.EnsureIn()
	return g, q
}

// cascadeEdgeQuery is the two-node query A -> A (undirected diameter 1)
// used by the strong-simulation row over the cascade graph: the dual
// stage collapses quadratically while the sequential baseline stays
// near-linear, and the radius-1 balls exercise the gathering stage.
func cascadeEdgeQuery() *graph.Graph {
	q := graph.New(2, true)
	q.Labels = []string{"A", "A"}
	q.AddEdge(0, 1)
	q.EnsureIn()
	return q
}

// simQuery builds the fixed 3-node path query A -> B -> C used by the
// strong-simulation row; its undirected diameter is 2, giving balls of
// radius 2.
func simQuery() *graph.Graph {
	q := graph.New(3, true)
	q.Labels = []string{"A", "B", "C"}
	q.AddEdge(0, 1)
	q.AddEdge(1, 2)
	q.EnsureIn()
	return q
}

// directedCycle returns the directed cycle 0->1->...->n-1->0.
func directedCycle(n int) *graph.Graph {
	g := graph.New(n, true)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
	}
	g.EnsureIn()
	return g
}

// directedPath returns the directed straight-line graph 0->1->...->n-1.
func directedPath(n int) *graph.Graph {
	g := graph.New(n, true)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	g.EnsureIn()
	return g
}

// increasingPath returns a path whose edge weights strictly increase
// toward the high end: only the heaviest live edge is locally dominant,
// so locally-heaviest matching needs Θ(n) rounds — the K = Θ(n) worst
// case behind the paper's O(Km) bound for row 13.
func increasingPath(n int) *graph.Graph {
	g := graph.New(n, false)
	for i := 0; i < n-1; i++ {
		g.AddWeightedEdge(graph.VertexID(i), graph.VertexID(i+1), float64(i+1))
	}
	return g
}

var simAlphabet = []string{"A", "B", "C", "D"}

// Experiments returns the full Table 1 registry.
func Experiments() []*Experiment {
	return []*Experiment{
		{
			ID: "T1.01", Row: 1, Workload: "Diameter (Unweighted)",
			VCAlgo: "eccentricity flooding [15]", VCComplexity: "O(mn)",
			SeqAlgo: "BFS from every vertex [19]", SeqComplexity: "O(mn)",
			PaperMoreWork: false, PaperBPPA: false,
			Small: Scale{N: 300, M: 900, Seed: 1}, Large: Scale{N: 1200, M: 3600, Seed: 1},
			Notes: "connected random graph; Θ(n) history per vertex fails P1/P3, work matches BFS-all-pairs",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.RandomConnected(sc.N, sc.M, sc.Seed)
				res, err := vc.Diameter(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.Eccentricities(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.02", Row: 2, Workload: "PageRank",
			VCAlgo: "Pregel PageRank [12]", VCComplexity: "O(mK)",
			SeqAlgo: "power iteration", SeqComplexity: "O(mK)",
			PaperMoreWork: false, PaperBPPA: false,
			Small: Scale{N: 1000, M: 3, Seed: 2}, Large: Scale{N: 8000, M: 3, Seed: 2},
			Notes: "preferential-attachment graph, K=30; balanced (P1–P3) but K exceeds log2 n, the paper's P4 argument",
			JudgeBPPA: func(small, large *bsp.Stats) bsp.BPPAVerdict {
				v := bsp.CheckBPPA(small, large)
				// The paper's argument: K (≈30 supersteps) is larger
				// than O(log n); judge P4 absolutely.
				v.P4Supersteps = float64(v.SuperstepsLarge) <= math.Log2(float64(large.N))+1
				return v
			},
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.PreferentialAttachment(sc.N, sc.M, sc.Seed)
				res, err := vc.PageRank(g, 0.85, 30, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.PageRank(g, 0.85, 30, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.03", Row: 3, Workload: "Connected Component (Hash-Min)",
			VCAlgo: "Hash-Min [12]", VCComplexity: "O(mδ)",
			SeqAlgo: "BFS [8]", SeqComplexity: "O(m+n)",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 512, Seed: 3}, Large: Scale{N: 8192, Seed: 3},
			Notes: "straight-line graph (the paper's witness): δ = n-1, so O(δ) supersteps and O(mδ) work",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.Path(sc.N)
				res, err := vc.HashMinCC(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.Components(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.04", Row: 4, Workload: "Connected Component (S-V)",
			VCAlgo: "Shiloach-Vishkin [25]", VCComplexity: "O((m+n)log n)",
			SeqAlgo: "BFS [8]", SeqComplexity: "O(m+n)",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 256, Seed: 4}, Large: Scale{N: 8192, Seed: 4},
			Notes: "straight-line graph; O(log n) rounds but roots receive ≫ d(v) messages (P3 fails)",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.Path(sc.N)
				res, err := vc.SVCC(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.Components(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.05", Row: 5, Workload: "Bi-Connected Component",
			VCAlgo: "Tarjan-Vishkin pipeline [25]", VCComplexity: "O((m+n)log n)",
			SeqAlgo: "Hopcroft-Tarjan DFS [8]", SeqComplexity: "O(m+n)",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 512, Seed: 5}, Large: Scale{N: 8192, Seed: 5},
			Notes: "cycle graph (one big biconnected component): exposes the S-V and list-ranking log factors of the pipeline (S-V + Euler tour + 3×list-ranking + aux-graph Hash-Min)",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.Cycle(sc.N)
				res, err := vc.BCC(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.BCC(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.06", Row: 6, Workload: "Weakly Connected Component",
			VCAlgo: "S-V on underlying graph [25]", VCComplexity: "O((m+n)log n)",
			SeqAlgo: "BFS [8]", SeqComplexity: "O(m+n)",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 256, Seed: 6}, Large: Scale{N: 8192, Seed: 6},
			Notes: "directed straight-line graph; S-V over the underlying undirected path exposes the log-factor",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := directedPath(sc.N)
				res, err := vc.WCC(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.Components(g.Underlying(), &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.07", Row: 7, Workload: "Strongly Connected Component",
			VCAlgo: "forward/backward min-label [25]", VCComplexity: "O((m+n)log n)",
			SeqAlgo: "Tarjan DFS [21]", SeqComplexity: "O(m+n)",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 256, Seed: 7}, Large: Scale{N: 4096, Seed: 7},
			Notes: "directed cycle 0->1->...->n-1->0 (one SCC): every vertex's forward label improves once per superstep until the minimum arrives, the Θ(mδ) analogue of Hash-Min's path",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := directedCycle(sc.N)
				res, err := vc.SCC(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.SCC(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.08", Row: 8, Workload: "Euler Tour of Tree",
			VCAlgo: "2-superstep next-pointer exchange [25]", VCComplexity: "O(n)",
			SeqAlgo: "DFS", SeqComplexity: "O(n)",
			PaperMoreWork: false, PaperBPPA: true,
			Small: Scale{N: 1024, Seed: 8}, Large: Scale{N: 16384, Seed: 8},
			Notes: "random tree; the benchmark's only work-optimal BPPA",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				t := graph.RandomTree(sc.N, sc.Seed)
				res, err := vc.EulerTour(t, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.EulerTour(t, 0, &ops)
				return measurement(sc, t.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.09", Row: 9, Workload: "Pre- & Post-order Tree Traversal",
			VCAlgo: "Euler tour + list-ranking [25]", VCComplexity: "O(n log n)",
			SeqAlgo: "DFS", SeqComplexity: "O(n)",
			PaperMoreWork: true, PaperBPPA: true,
			Small: Scale{N: 256, Seed: 9}, Large: Scale{N: 16384, Seed: 9},
			Notes: "random tree; list-ranking's pointer jumping costs the extra log n",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				t := graph.RandomTree(sc.N, sc.Seed)
				res, err := vc.PrePostOrder(t, 0, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.PrePostOrder(t, 0, &ops)
				return measurement(sc, t.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.10", Row: 10, Workload: "Spanning Tree",
			VCAlgo: "S-V with hook-edge recording [22,25]", VCComplexity: "O((m+n)log n)",
			SeqAlgo: "BFS", SeqComplexity: "O(m+n)",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 256, Seed: 10}, Large: Scale{N: 8192, Seed: 10},
			Notes: "straight-line graph; hook edges of S-V form the spanning forest",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.Path(sc.N)
				res, err := vc.SVCC(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.SpanningForest(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.11", Row: 11, Workload: "Minimum Cost Spanning Tree",
			VCAlgo: "Boruvka [20]", VCComplexity: "O(δm log n)",
			SeqAlgo: "radix Kruskal (for Chazelle [3])", SeqComplexity: "O(m α(m,n))",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 128, M: 384, Seed: 11}, Large: Scale{N: 16384, M: 49152, Seed: 11},
			Notes: "connected random graph, distinct weights; baseline is radix-sort Kruskal (near-linear like Chazelle); super-vertices absorb whole edge lists (P3 fails)",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.RandomConnected(sc.N, sc.M, sc.Seed)
				graph.RandomWeights(g, sc.Seed+100)
				res, err := vc.MCST(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.MSTKruskalRadix(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.12", Row: 12, Workload: "Graph Coloring with MIS",
			VCAlgo: "Luby MIS phases [20]", VCComplexity: "O(Km log n)",
			SeqAlgo: "lexicographically-first MIS", SeqComplexity: "O(Km)",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 256, M: 1024, Seed: 12}, Large: Scale{N: 8192, M: 32768, Seed: 12},
			Notes: "random graph; each of the K color phases costs expected O(log n) supersteps. P4 judged by the paper's absolute argument: total supersteps O(K log n) with non-constant K far exceed log n",
			JudgeBPPA: func(small, large *bsp.Stats) bsp.BPPAVerdict {
				v := bsp.CheckBPPA(small, large)
				v.P4Supersteps = float64(v.SuperstepsLarge) <= math.Log2(float64(large.N))+1
				return v
			},
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.Random(sc.N, sc.M, sc.Seed)
				res, err := vc.ColoringMIS(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.ColoringMIS(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.13", Row: 13, Workload: "Maximum Weight Matching",
			VCAlgo: "locally-heaviest rounds [20]", VCComplexity: "O(Km)",
			SeqAlgo: "Preis (path-growing) [16]", SeqComplexity: "O(m)",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 512, Seed: 13}, Large: Scale{N: 4096, Seed: 13},
			Notes: "path with strictly increasing weights: only the heaviest live edge is locally dominant, so K = Θ(n) rounds — the worst case behind O(Km)",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := increasingPath(sc.N)
				res, err := vc.MaxWeightMatching(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.MaxWeightMatchingPGA(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.14", Row: 14, Workload: "Bipartite Maximal Matching",
			VCAlgo: "4-phase random matching [12]", VCComplexity: "O(m log n)",
			SeqAlgo: "greedy", SeqComplexity: "O(m+n)",
			PaperMoreWork: true, PaperBPPA: true,
			Small: Scale{N: 256, M: 1024, Seed: 14}, Large: Scale{N: 8192, M: 32768, Seed: 14},
			Notes: "random bipartite graph (n/2 per side); O(log n) request/grant rounds of O(m) messages",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				nl := sc.N / 2
				g := graph.RandomBipartite(nl, sc.N-nl, sc.M, sc.Seed)
				res, err := vc.BipartiteMatching(g, nl, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.GreedyBipartiteMatching(g, nl, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.15", Row: 15, Workload: "Betweenness Centrality (Unweighted)",
			VCAlgo: "BSP Brandes [18]", VCComplexity: "O(mn)",
			SeqAlgo: "Brandes [1]", SeqComplexity: "O(mn)",
			PaperMoreWork: false, PaperBPPA: false,
			Small: Scale{N: 144, Seed: 15}, Large: Scale{N: 2304, Seed: 15},
			Notes: "√n × √n grid, 8 fixed sources; per-source supersteps track δ = Θ(√n), failing P4",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				side := int(math.Round(math.Sqrt(float64(sc.N))))
				g := graph.Grid(side, side)
				sources := gridSources(g.N(), 8)
				res, err := vc.Betweenness(g, sources, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.Betweenness(g, sources, &ops)
				return measurement(Scale{N: g.N()}, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.16", Row: 16, Workload: "Single-Source Shortest Path",
			VCAlgo: "Pregel Bellman-Ford [12]", VCComplexity: "O(mn)",
			SeqAlgo: "Dijkstra (binary heap for Fibonacci)", SeqComplexity: "O(m + n log n)",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 256, Seed: 16}, Large: Scale{N: 16384, Seed: 16},
			Notes: "weighted √n×√n grid: Θ(√n) supersteps and repeated distance corrections vs. Dijkstra's near-linear scan",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				side := int(math.Round(math.Sqrt(float64(sc.N))))
				g := graph.Grid(side, side)
				graph.RandomWeights(g, sc.Seed+100)
				res, err := vc.SSSP(g, 0, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.Dijkstra(g, 0, &ops)
				return measurement(Scale{N: g.N()}, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.17", Row: 17, Workload: "All-pair Shortest Paths (Unweighted)",
			VCAlgo: "eccentricity flooding [15]", VCComplexity: "O(mn)",
			SeqAlgo: "BFS from every vertex (for Chan [2])", SeqComplexity: "O(mn)",
			PaperMoreWork: false, PaperBPPA: false,
			Small: Scale{N: 300, M: 900, Seed: 17}, Large: Scale{N: 1200, M: 3600, Seed: 17},
			Notes: "same flooding run as row 1; first-arrival supersteps are the APSP matrix",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g := graph.RandomConnected(sc.N, sc.M, sc.Seed)
				res, err := vc.Diameter(g, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.APSPUnweighted(g, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.18", Row: 18, Workload: "Graph Simulation",
			VCAlgo: "matchSet refinement [5]", VCComplexity: "O(m²(nq+mq))",
			SeqAlgo: "Henzinger et al. [7]", SeqComplexity: "O((m+n)(mq+nq))",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 256, Seed: 18}, Large: Scale{N: 2048, Seed: 18},
			Notes: "cascade graph: one matchSet collapses per superstep while a hub rescans its whole child list — the Θ(m) supersteps × Θ(m) work worst case",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g, q := cascadeSim(sc.N)
				res, err := vc.GraphSimulation(g, q, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.GraphSimulation(g, q, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.19", Row: 19, Workload: "Dual Simulation",
			VCAlgo: "bidirectional matchSet refinement [5]", VCComplexity: "O(m²(nq+mq))",
			SeqAlgo: "Ma et al. [11]", SeqComplexity: "O((m+n)(mq+nq))",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 256, Seed: 19}, Large: Scale{N: 2048, Seed: 19},
			Notes: "same cascade workload as row 18 with parent conditions active",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g, q := cascadeSim(sc.N)
				res, err := vc.DualSimulation(g, q, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.DualSimulation(g, q, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
		{
			ID: "T1.20", Row: 20, Workload: "Strong Simulation",
			VCAlgo: "dual sim + ball gathering [5]", VCComplexity: "O(m²n(nq+mq))",
			SeqAlgo: "Ma et al. [11]", SeqComplexity: "O(n(m+n)(mq+nq))",
			PaperMoreWork: true, PaperBPPA: false,
			Small: Scale{N: 128, Seed: 20}, Large: Scale{N: 1024, Seed: 20},
			Notes: "cascade graph with the two-node query A->A: the distributed dual-sim stage collapses one matchSet per superstep (Θ(m) supersteps, hub rescans) before radius-1 ball gathering, vs. the near-linear Ma et al. baseline",
			Run: func(sc Scale, cfg vc.Config) (bsp.Measurement, error) {
				g, _ := cascadeSim(sc.N)
				q := cascadeEdgeQuery()
				res, err := vc.StrongSimulation(g, q, cfg)
				if err != nil {
					return bsp.Measurement{}, err
				}
				var ops seq.Ops
				seq.StrongSimulation(g, q, &ops)
				return measurement(sc, g.M(), res.Stats, &ops), nil
			},
		},
	}
}

// gridSources returns k deterministic, spread-out source vertices.
func gridSources(n, k int) []graph.VertexID {
	if k > n {
		k = n
	}
	out := make([]graph.VertexID, k)
	for i := 0; i < k; i++ {
		out[i] = graph.VertexID(i * n / k)
	}
	return out
}
