// Package core reproduces the paper's contribution: the complexity
// benchmark of Table 1. It defines one experiment per table row, runs
// the vertex-centric implementation (internal/vc) and the best-known
// sequential baseline (internal/seq) at two input scales, evaluates the
// two verdicts the paper reports for every workload — "does the
// vertex-centric algorithm perform more work?" (time-processor product
// growth vs. the sequential operation count) and "is it a balanced,
// practical Pregel algorithm?" (the four BPPA properties) — and renders
// the reproduced table next to the paper's expectations.
package core

import (
	"fmt"
	"sort"
	"strings"

	"vcgraph/internal/bsp"
	"vcgraph/internal/vc"
)

// Scale parameterizes one workload size.
type Scale struct {
	N    int   // vertices (or the scale's primary size knob)
	M    int   // target edges (generator-specific meaning)
	Seed int64 // generator seed
}

// Experiment is one Table 1 row: metadata, the paper's verdicts, the
// two scales to measure at, and the paired vertex-centric/sequential
// runner.
type Experiment struct {
	ID            string // "T1.01" ... "T1.20"
	Row           int
	Workload      string
	VCAlgo        string // citation-style name of the vertex-centric algorithm
	VCComplexity  string // the paper's stated vertex-centric bound
	SeqAlgo       string
	SeqComplexity string
	PaperMoreWork bool
	PaperBPPA     bool

	Small, Large Scale

	// Run executes both implementations at one scale and returns the
	// paired measurement.
	Run func(sc Scale, cfg vc.Config) (bsp.Measurement, error)

	// JudgeBPPA overrides the default growth-based BPPA check for rows
	// whose paper verdict rests on an absolute argument (e.g. PageRank's
	// K > log n). Nil uses bsp.CheckBPPA.
	JudgeBPPA func(small, large *bsp.Stats) bsp.BPPAVerdict

	// Notes documents workload choices and substitutions for this row.
	Notes string
}

// Outcome is a fully evaluated experiment.
type Outcome struct {
	Exp           *Experiment
	SmallM        bsp.Measurement
	LargeM        bsp.Measurement
	MoreWork      bool
	BPPA          bsp.BPPAVerdict
	MoreWorkRepro bool // measured verdict agrees with the paper
	BPPARepro     bool
}

// RunExperiment measures one experiment at both scales and evaluates
// the verdicts.
func RunExperiment(e *Experiment, cfg vc.Config) (*Outcome, error) {
	small, err := e.Run(e.Small, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s small scale: %w", e.ID, err)
	}
	large, err := e.Run(e.Large, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s large scale: %w", e.ID, err)
	}
	out := &Outcome{Exp: e, SmallM: small, LargeM: large}
	out.MoreWork = bsp.MoreWork(small, large)
	if e.JudgeBPPA != nil {
		out.BPPA = e.JudgeBPPA(small.VCStats, large.VCStats)
	} else {
		out.BPPA = bsp.CheckBPPA(small.VCStats, large.VCStats)
	}
	out.MoreWorkRepro = out.MoreWork == e.PaperMoreWork
	out.BPPARepro = out.BPPA.OK() == e.PaperBPPA
	return out, nil
}

// RunAll executes every registered experiment (or the subset whose ID
// is in filter, when non-empty) in row order.
func RunAll(cfg vc.Config, filter ...string) ([]*Outcome, error) {
	return runRegistry(Experiments(), cfg, filter...)
}

// RunExtensions executes the extension registry ("Table 2", the
// beyond-Table-1 workloads of §3.8 and the Pregel paper).
func RunExtensions(cfg vc.Config, filter ...string) ([]*Outcome, error) {
	return runRegistry(ExtensionExperiments(), cfg, filter...)
}

func runRegistry(exps []*Experiment, cfg vc.Config, filter ...string) ([]*Outcome, error) {
	want := make(map[string]bool, len(filter))
	for _, f := range filter {
		want[f] = true
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].Row < exps[j].Row })
	var outs []*Outcome
	for _, e := range exps {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		o, err := RunExperiment(e, cfg)
		if err != nil {
			return outs, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}

func yesNo(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

func mark(b bool) string {
	if b {
		return "ok"
	}
	return "DIFF"
}

// RenderTable formats the reproduced Table 1: per row the paper's
// verdicts, the measured verdicts, and the evidence (work-overhead
// ratios and superstep counts at both scales).
func RenderTable(outs []*Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — Efficiency benchmark for vertex-centric graph algorithms (reproduced)\n")
	fmt.Fprintf(&b, "ratio = time-processor product / sequential ops, at small and large scale\n\n")
	fmt.Fprintf(&b, "%-5s %-34s %-16s %-14s | %-5s %-5s | %-5s %-5s | %9s %9s | %5s %5s | %s\n",
		"id", "workload", "vc-bound", "seq-bound",
		"MW(p)", "MW(m)", "BP(p)", "BP(m)",
		"ratio-S", "ratio-L", "ss-S", "ss-L", "repro")
	fmt.Fprintln(&b, strings.Repeat("-", 150))
	for _, o := range outs {
		e := o.Exp
		fmt.Fprintf(&b, "%-5s %-34s %-16s %-14s | %-5s %-5s | %-5s %-5s | %9.2f %9.2f | %5d %5d | %s/%s\n",
			e.ID, e.Workload, e.VCComplexity, e.SeqComplexity,
			yesNo(e.PaperMoreWork), yesNo(o.MoreWork),
			yesNo(e.PaperBPPA), yesNo(o.BPPA.OK()),
			o.SmallM.Ratio(), o.LargeM.Ratio(),
			o.SmallM.VCStats.NumSupersteps(), o.LargeM.VCStats.NumSupersteps(),
			mark(o.MoreWorkRepro), mark(o.BPPARepro))
	}
	return b.String()
}

// RenderCSV emits the outcomes as machine-readable CSV (one row per
// experiment) for downstream plotting.
func RenderCSV(outs []*Outcome) string {
	var b strings.Builder
	b.WriteString("id,workload,n_small,m_small,n_large,m_large," +
		"pt_small,pt_large,seq_small,seq_large,ratio_small,ratio_large," +
		"supersteps_small,supersteps_large," +
		"paper_morework,measured_morework,paper_bppa,measured_bppa," +
		"p1_space,p2_compute,p3_messages,p4_supersteps\n")
	for _, o := range outs {
		e := o.Exp
		fmt.Fprintf(&b, "%s,%q,%d,%d,%d,%d,%.0f,%.0f,%.0f,%.0f,%.4f,%.4f,%d,%d,%v,%v,%v,%v,%v,%v,%v,%v\n",
			e.ID, e.Workload,
			o.SmallM.N, o.SmallM.M, o.LargeM.N, o.LargeM.M,
			o.SmallM.PT, o.LargeM.PT, o.SmallM.SeqOps, o.LargeM.SeqOps,
			o.SmallM.Ratio(), o.LargeM.Ratio(),
			o.SmallM.VCStats.NumSupersteps(), o.LargeM.VCStats.NumSupersteps(),
			e.PaperMoreWork, o.MoreWork, e.PaperBPPA, o.BPPA.OK(),
			o.BPPA.P1Space, o.BPPA.P2Compute, o.BPPA.P3Messages, o.BPPA.P4Supersteps)
	}
	return b.String()
}

// RenderDetails formats the per-row BPPA evidence used in
// EXPERIMENTS.md.
func RenderDetails(outs []*Outcome) string {
	var b strings.Builder
	for _, o := range outs {
		e := o.Exp
		fmt.Fprintf(&b, "%s %s\n", e.ID, e.Workload)
		fmt.Fprintf(&b, "  vc: %s (%s)   seq: %s (%s)\n", e.VCAlgo, e.VCComplexity, e.SeqAlgo, e.SeqComplexity)
		fmt.Fprintf(&b, "  scales: n=%d,m=%d -> n=%d,m=%d\n", o.SmallM.N, o.SmallM.M, o.LargeM.N, o.LargeM.M)
		fmt.Fprintf(&b, "  PT: %.0f -> %.0f   seq ops: %.0f -> %.0f   ratio: %.2f -> %.2f\n",
			o.SmallM.PT, o.LargeM.PT, o.SmallM.SeqOps, o.LargeM.SeqOps,
			o.SmallM.Ratio(), o.LargeM.Ratio())
		v := o.BPPA
		fmt.Fprintf(&b, "  BPPA: P1(space)=%v P2(compute)=%v P3(messages)=%v P4(supersteps)=%v\n",
			v.P1Space, v.P2Compute, v.P3Messages, v.P4Supersteps)
		fmt.Fprintf(&b, "  evidence: state/deg=%.1f compute/deg=%.1f sent/deg=%.1f recv/deg=%.1f supersteps %d -> %d\n",
			v.StateRatio, v.ComputeRatio, v.SentRatio, v.RecvRatio, v.SuperstepsSmall, v.SuperstepsLarge)
		if e.Notes != "" {
			fmt.Fprintf(&b, "  notes: %s\n", e.Notes)
		}
		fmt.Fprintf(&b, "  verdicts vs paper: more-work %s, BPPA %s\n\n", mark(o.MoreWorkRepro), mark(o.BPPARepro))
	}
	return b.String()
}
