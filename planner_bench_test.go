// Adaptive plan layer benchmark: the planner-driven "auto" engine
// against fixed engine choices on the two workloads with the clearest
// committed story — connected components on a long path, where the
// planner's block-centric pick collapses Θ(n) supersteps and beats the
// worst fixed engine by well over the 1.5x acceptance bar, and fixed-K
// PageRank on a power-law graph, where auto must stay within 10% of
// the best fixed configuration (it picks the same GAS engine, paying
// only the sampling overhead). BENCH_planner.json records the
// committed numbers and the two headline ratios cmd/benchguard
// enforces in CI.
package vcgraph

import (
	"testing"

	"vcgraph/internal/graph"
	"vcgraph/internal/plan"
	"vcgraph/internal/vc"
)

// fixedScript forces the auto harness onto one plan for the whole run,
// so fixed-engine baselines carry the identical orchestration overhead
// and the measured gap is purely the plan choice.
func fixedScript(p plan.Plan) []plan.Decision {
	return []plan.Decision{{Plan: p, Reason: "fixed"}}
}

func BenchmarkPlanner(b *testing.B) {
	ccGraph := graph.Path(4096)
	prGraph := graph.PreferentialAttachment(4000, 3, 31)
	cfg := vc.Config{Workers: 4}

	runCC := func(b *testing.B, script []plan.Decision) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := vc.HashMinCCAuto(ccGraph, vc.AutoConfig{Config: cfg, Script: script}); err != nil {
				b.Fatal(err)
			}
		}
	}
	runPR := func(b *testing.B, script []plan.Decision) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := vc.PageRankAuto(prGraph, 0.85, 20, vc.AutoConfig{Config: cfg, Script: script}); err != nil {
				b.Fatal(err)
			}
		}
	}

	// CC on a 4096-vertex path: the planner picks block-centric (5
	// supersteps); the worst fixed engine is pregel Hash-Min (4096).
	b.Run("ccpath/auto", func(b *testing.B) { runCC(b, nil) })
	b.Run("ccpath/fixed-pregel", func(b *testing.B) {
		runCC(b, fixedScript(plan.Plan{Engine: plan.EnginePregel, Partition: plan.PartitionHash, Mode: "auto"}))
	})
	b.Run("ccpath/fixed-blockcentric", func(b *testing.B) {
		runCC(b, fixedScript(plan.Plan{Engine: plan.EngineBlockcentric, Partition: plan.PartitionRange, Mode: "auto"}))
	})

	// Fixed-K PageRank on power-law: every engine runs the same 20
	// iterations, and the best fixed choice is GAS — which is what the
	// planner picks, so auto tracks it up to the sampling pass.
	b.Run("prpowerlaw/auto", func(b *testing.B) { runPR(b, nil) })
	b.Run("prpowerlaw/fixed-gas", func(b *testing.B) {
		runPR(b, fixedScript(plan.Plan{Engine: plan.EngineGAS, Partition: plan.PartitionHash, Mode: "auto"}))
	})
	b.Run("prpowerlaw/fixed-blockcentric", func(b *testing.B) {
		runPR(b, fixedScript(plan.Plan{Engine: plan.EngineBlockcentric, Partition: plan.PartitionRange, Mode: "auto"}))
	})
}