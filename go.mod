module vcgraph

go 1.22
