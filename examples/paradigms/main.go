// Paradigms: the same two problems solved in every programming model
// the paper surveys — synchronous vertex-centric (Pregel), with and
// without the finishing-computations-serially optimization,
// subgraph-centric (Giraph++-style blocks), and gather-apply-scatter
// (PowerGraph-style pull) — with the BSP cost metrics side by side.
// This is the paper's concluding argument made runnable: "one
// distributed model might not be suitable for all kinds of graph
// computations."
package main

import (
	"fmt"

	"vcgraph/internal/blockcentric"
	"vcgraph/internal/bsp"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

func main() {
	// Problem 1: connected components on a high-diameter graph.
	g := graph.PermutedPath(8192, 3)
	fmt.Printf("problem 1: connected components on a permuted path (n=%d, δ=n-1)\n\n", g.N())
	fmt.Printf("%-28s %12s %14s %14s\n", "model", "supersteps", "messages", "P·T")

	hm, err := vc.HashMinCC(g, vc.Config{Workers: 4})
	must(err)
	row("Pregel Hash-Min", hm.Stats)

	fcs, err := vc.HashMinCC(g, vc.Config{Workers: 4, FCS: 64})
	must(err)
	row("Pregel Hash-Min + FCS", fcs.Stats)

	sv, err := vc.SVCC(g, vc.Config{Workers: 4})
	must(err)
	row("Pregel Shiloach-Vishkin", sv.Stats)

	// Block-centric quality depends on the partition: ID ranges scatter
	// a permuted path across blocks (every edge a boundary edge), while
	// a locality-aware partition keeps path segments together.
	bc, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: 4})
	must(err)
	row("block-centric, ID ranges", bc.Stats)

	bcGood, err := blockcentric.ConnectedComponents(g, blockcentric.Config{
		Blocks:    4,
		Partition: pathSegments(g),
	})
	must(err)
	row("block-centric, segments", bcGood.Stats)

	// Problem 2: PageRank to convergence.
	pa := graph.PreferentialAttachment(10000, 3, 7)
	fmt.Printf("\nproblem 2: PageRank to convergence (eps=1e-9) on PA graph (n=%d, m=%d)\n\n", pa.N(), pa.M())
	fmt.Printf("%-28s %12s %14s %14s\n", "model", "iterations", "edge work", "P·T")

	pr, iters, err := vc.PageRankConverge(pa, 0.85, 1e-9, vc.Config{Workers: 4})
	must(err)
	fmt.Printf("%-28s %12d %14d %14.0f\n", "Pregel (push, sync)",
		iters, pr.Stats.TotalMessages, pr.Stats.MeasuredTPP())

	_, gres, err := gas.PageRank(pa, 0.85, 1e-9, gas.Config{Workers: 4})
	must(err)
	fmt.Printf("%-28s %12d %14d %14.0f\n", "GAS (pull, delta-sched)",
		gres.Iterations, gres.Stats.TotalWork, gres.Stats.MeasuredTPP())

	fmt.Println("\nall models agree on the answers; they differ wildly in supersteps,")
	fmt.Println("message volume, and time-processor product — the paper's point that")
	fmt.Println("the model must be chosen per workload.")
}

func row(name string, st *bsp.Stats) {
	fmt.Printf("%-28s %12d %14d %14.0f\n", name,
		st.NumSupersteps(), st.TotalMessages, st.MeasuredTPP())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// pathSegments builds a locality-aware partitioner for a path graph by
// walking it from one endpoint and cutting it into contiguous segments
// — a stand-in for the locality a real partitioner (e.g. METIS) finds.
func pathSegments(g *graph.Graph) func(*graph.Graph, int) []int32 {
	n := g.N()
	// Find an endpoint and walk.
	start := graph.VertexID(0)
	for v := 0; v < n; v++ {
		if g.Degree(graph.VertexID(v)) == 1 {
			start = graph.VertexID(v)
			break
		}
	}
	order := make([]graph.VertexID, 0, n)
	prev := graph.NoVertex
	cur := start
	for len(order) < n {
		order = append(order, cur)
		next := graph.NoVertex
		for _, e := range g.Out[cur] {
			if e.Dst != prev {
				next = e.Dst
				break
			}
		}
		if next == graph.NoVertex {
			break
		}
		prev, cur = cur, next
	}
	return func(g *graph.Graph, blocks int) []int32 {
		owner := make([]int32, n)
		for i, v := range order {
			owner[v] = int32(i * blocks / n)
			if owner[v] >= int32(blocks) {
				owner[v] = int32(blocks) - 1
			}
		}
		return owner
	}
}
