// Road-network analytics on a weighted grid: shortest-path routing
// (SSSP), network span (diameter), and congestion points (betweenness
// centrality) — workloads where the grid's Θ(√n) diameter makes the
// superstep counts of vertex-centric algorithms painfully visible.
package main

import (
	"fmt"

	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

func main() {
	const side = 40
	g := graph.Grid(side, side)
	graph.RandomWeights(g, 21)
	fmt.Printf("road grid: %dx%d (n=%d, m=%d)\n\n", side, side, g.N(), g.M())
	cfg := vc.Config{Workers: 4}

	// Routing: travel cost from the north-west depot to everywhere.
	sssp, err := vc.SSSP(g, 0, cfg)
	if err != nil {
		panic(err)
	}
	corner := graph.VertexID(side*side - 1)
	fmt.Printf("cheapest route depot -> far corner: %.4g\n", sssp.Dist[corner])
	fmt.Printf("  SSSP took %d supersteps (Bellman-Ford waves across the Θ(√n)-diameter grid)\n\n",
		sssp.Stats.NumSupersteps())

	// Network span in hops.
	diam, err := vc.Diameter(g, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hop diameter: %d (expected %d for a %dx%d grid)\n\n", diam.Diameter, 2*(side-1), side, side)

	// Congestion: betweenness from 8 sampled depots.
	sources := []graph.VertexID{0, 399, 780, 1170, 820, 41, 1558, 760}
	bc, err := vc.Betweenness(g, sources, cfg)
	if err != nil {
		panic(err)
	}
	best, bestV := 0.0, graph.VertexID(0)
	for v, c := range bc.BC {
		if c > best {
			best, bestV = c, graph.VertexID(v)
		}
	}
	fmt.Printf("most congested intersection: (%d,%d) with betweenness %.1f over %d depots\n",
		int(bestV)/side, int(bestV)%side, best, len(sources))
	fmt.Printf("  betweenness took %d supersteps total — Θ(δ) per depot, the paper's P4 failure\n",
		bc.Stats.NumSupersteps())
}
