// Fault tolerance: Pregel's checkpoint/rollback mechanism in action.
// The run below checkpoints Hash-Min every 64 supersteps on a long
// path, injects a machine failure mid-run, and shows the recovery
// rolling back to the last checkpoint and re-executing — producing the
// exact same answer at the cost of the redone supersteps.
package main

import (
	"fmt"

	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
	"vcgraph/internal/vc"
)

func main() {
	g := graph.Path(512) // δ = 511: a long-running Hash-Min
	fmt.Printf("graph: path n=%d (Hash-Min needs ~n supersteps)\n\n", g.N())

	clean, err := vc.HashMinCC(g, vc.Config{Workers: 4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("clean run:      %4d supersteps, %8d messages\n",
		clean.Stats.NumSupersteps(), clean.Stats.TotalMessages)

	recovered, err := vc.HashMinCC(g, vc.Config{
		Workers:         4,
		CheckpointEvery: 64,                       // snapshot every 64 supersteps
		Faults:          rt.PlanOf(rt.Crash(300)), // machine failure right before superstep 300
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("with failure:   %4d supersteps, %8d messages\n",
		recovered.Stats.NumSupersteps(), recovered.Stats.TotalMessages)
	redone := recovered.Stats.NumSupersteps() - clean.Stats.NumSupersteps()
	fmt.Printf("recovery cost:  %4d re-executed supersteps (failure at 300, last checkpoint at 256)\n\n", redone)

	same := true
	for v := range clean.Color {
		if clean.Color[v] != recovered.Color[v] {
			same = false
			break
		}
	}
	fmt.Printf("results identical after recovery: %v\n", same)
	fmt.Println("\ncheckpoint cadence trades snapshot cost against recovery re-execution —")
	fmt.Println("exactly the knob a production Pregel deployment tunes.")
}
