// Quickstart: run one vertex-centric algorithm on a generated graph
// and read off both the answer and the BSP cost metrics the library
// instruments (the paper's time-processor product and BPPA evidence).
package main

import (
	"fmt"

	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

func main() {
	// A small scale-free graph, like the paper's web-graph motivation.
	g := graph.PreferentialAttachment(2000, 3, 42)
	fmt.Printf("graph: n=%d m=%d\n\n", g.N(), g.M())

	// PageRank, exactly as in the Pregel paper: 30 supersteps, α=0.85.
	res, err := vc.PageRank(g, 0.85, 30, vc.Config{Workers: 4})
	if err != nil {
		panic(err)
	}
	top, topV := 0.0, 0
	for v, r := range res.Ranks {
		if r > top {
			top, topV = r, v
		}
	}
	fmt.Printf("PageRank: top vertex %d with rank %.5f\n", topV, top)

	// Every run carries the instrumentation the paper's benchmark needs.
	st := res.Stats
	fmt.Printf("supersteps: %d\n", st.NumSupersteps())
	fmt.Printf("messages:   %d (about m per superstep: %d edges)\n", st.TotalMessages, g.M())
	fmt.Printf("time-processor product (g=1, L=1): %.0f\n", st.MeasuredTPP())
	fmt.Printf("per-vertex balance (max/degree): compute %.2f, sent %.2f, recv %.2f\n",
		st.MaxComputePerDeg, st.MaxSentPerDeg, st.MaxRecvPerDeg)
	fmt.Println("\nPageRank is 'balanced' (per-vertex cost tracks degree) but runs")
	fmt.Println("K=30 supersteps — more than log2(n) — which is why Table 1 row 2")
	fmt.Println("classifies it as not a balanced practical Pregel algorithm (BPPA).")
}
