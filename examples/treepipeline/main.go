// Tree pipeline: the paper's §3.4 toolchain end to end — Euler tour,
// list ranking, and pre/post-order numbering of a large random tree —
// including the superstep/work accounting that makes row 8 the
// benchmark's only work-optimal BPPA and row 9 an O(n log n) algorithm.
package main

import (
	"fmt"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
	"vcgraph/internal/vc"
)

func main() {
	t := graph.RandomTree(10000, 99)
	fmt.Printf("random tree: n=%d\n\n", t.N())
	cfg := vc.Config{Workers: 4}

	// Row 8: the Euler tour, a 2-superstep BPPA.
	et, err := vc.EulerTour(t, cfg)
	if err != nil {
		panic(err)
	}
	tour := et.Walk(t, 0)
	fmt.Printf("Euler tour: %d directed edges in %d supersteps\n", len(tour), et.Stats.NumSupersteps())
	fmt.Printf("  first steps: %v %v %v ...\n", tour[0], tour[1], tour[2])
	fmt.Printf("  per-vertex messages stay within degree: sent/deg=%.2f recv/deg=%.2f (BPPA)\n\n",
		et.Stats.MaxSentPerDeg, et.Stats.MaxRecvPerDeg)

	// List ranking on its own: sum positions along a list of 1e4 cells.
	n := 10000
	pred := make([]graph.VertexID, n)
	val := make([]int64, n)
	pred[0] = graph.NoVertex
	for i := 1; i < n; i++ {
		pred[i] = graph.VertexID(i - 1)
		val[i] = 1
	}
	lr, err := vc.ListRank(pred, val, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("list ranking: element %d has rank %d after %d supersteps (~2·log2 n rounds)\n\n",
		n-1, lr.Sum[n-1], lr.Stats.NumSupersteps())

	// Row 9: pre/post-order numbering via three list-ranking passes.
	tr, err := vc.PrePostOrder(t, 0, cfg)
	if err != nil {
		panic(err)
	}
	var ops seq.Ops
	wantPre, wantPost := seq.PrePostOrder(t, 0, &ops)
	agree := true
	for v := 0; v < t.N(); v++ {
		if tr.Pre[v] != wantPre[v] || tr.Post[v] != wantPost[v] {
			agree = false
			break
		}
	}
	fmt.Printf("pre/post-order: computed in %d supersteps; DFS agreement: %v\n",
		tr.Stats.NumSupersteps(), agree)
	fmt.Printf("  vertex-centric work (PT): %.0f vs sequential DFS ops: %d — the extra\n",
		tr.Stats.MeasuredTPP(), ops.N)
	fmt.Println("  factor is list-ranking's log n, exactly Table 1 row 9's verdict.")
}
