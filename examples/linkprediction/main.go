// Link prediction — one of the workloads the paper's §3.8 lists as an
// open question for vertex-centric systems — implemented the classic
// way: personalized PageRank from each query user, estimated with
// Monte Carlo random walks where every walk step is a Pregel message.
// On a planted-community graph the predictions land inside the user's
// own community, and the walk/message accounting shows what the
// workload costs in the vertex-centric model.
package main

import (
	"fmt"

	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

func main() {
	// A social network with four planted communities of 50 users.
	g := graph.StochasticBlockModel(200, 4, 0.25, 0.004, 17)
	fmt.Printf("social graph: n=%d m=%d, 4 planted communities of 50\n\n", g.N(), g.M())

	cfg := vc.Config{Workers: 4, Seed: 5}
	for _, user := range []graph.VertexID{3, 77, 151} {
		preds, ppr, err := vc.LinkPrediction(g, user, 5, 30000, cfg)
		if err != nil {
			panic(err)
		}
		community := int(user) / 50
		inside := 0
		for _, p := range preds {
			if int(p)/50 == community {
				inside++
			}
		}
		fmt.Printf("user %3d (community %d): suggest %v  — %d/%d inside their community\n",
			user, community, preds, inside, len(preds))
		fmt.Printf("          %d walks became %d messages over %d supersteps\n",
			ppr.Walks, ppr.Stats.TotalMessages, ppr.Stats.NumSupersteps())
	}
	fmt.Println("\nevery walk step is a message: the vertex-centric cost of this")
	fmt.Println("workload is walks × E[length] messages — §3.8's point that random-")
	fmt.Println("walk analytics are communication-bound in the think-like-a-vertex model.")
}
