// Pattern matching: graph simulation, dual simulation, and strong
// simulation (Table 1 rows 18-20) over a labeled "who-talks-to-whom"
// service graph, showing how each refinement tightens the match set.
package main

import (
	"fmt"

	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

func main() {
	// A microservice call graph: frontends call APIs, APIs call DBs and
	// caches, with some back-calls (webhooks).
	labels := []string{"FE", "API", "DB", "CACHE"}
	g := graph.RandomDirected(800, 3200, 11)
	graph.RandomLabels(g, labels, 12)
	fmt.Printf("service graph: n=%d m=%d, labels %v\n\n", g.N(), g.M(), labels)

	// Query: a frontend that calls an API that reads a DB.
	q := graph.New(3, true)
	q.Labels = []string{"FE", "API", "DB"}
	q.AddEdge(0, 1)
	q.AddEdge(1, 2)
	q.EnsureIn()
	fmt.Println("query: FE -> API -> DB")

	cfg := vc.Config{Workers: 4}

	gs, err := vc.GraphSimulation(g, q, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ngraph simulation:  %4d matched services  (supersteps %d, messages %d)\n",
		matched(gs.Match), gs.Stats.NumSupersteps(), gs.Stats.TotalMessages)

	ds, err := vc.DualSimulation(g, q, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dual simulation:   %4d matched services  (adds parent conditions)\n", matched(ds.Match))

	ss, err := vc.StrongSimulation(g, q, cfg)
	if err != nil {
		panic(err)
	}
	centers := 0
	for _, c := range ss.Centers {
		if c {
			centers++
		}
	}
	fmt.Printf("strong simulation: %4d match centers     (locality within radius diameter(Q))\n", centers)

	fmt.Println("\nnote the inclusion chain: strong ⊆ dual ⊆ graph simulation —")
	fmt.Println("each refinement trades extra communication for tighter topology")
	fmt.Println("capture, which is exactly the cost Table 1 quantifies.")
	fmt.Printf("strong-sim gathering shipped %d messages vs %d for plain simulation.\n",
		ss.Stats.TotalMessages, gs.Stats.TotalMessages)
}

func matched(sets []uint64) int {
	c := 0
	for _, s := range sets {
		if s != 0 {
			c++
		}
	}
	return c
}
