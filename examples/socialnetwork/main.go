// Social-network analytics: the workload mix that motivates
// vertex-centric systems — influence ranking, community structure, and
// an assignment problem — all on one scale-free graph, with the
// engine's cost metrics shown per task.
package main

import (
	"fmt"
	"sort"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

func main() {
	// A scale-free "follower" graph plus a sprinkle of isolated users.
	g := graph.PreferentialAttachment(5000, 2, 7)
	fmt.Printf("social graph: n=%d m=%d\n\n", g.N(), g.M())
	cfg := vc.Config{Workers: 4, Seed: 7}

	// 1. Influence: PageRank top-5.
	pr, err := vc.PageRank(g, 0.85, 30, cfg)
	if err != nil {
		panic(err)
	}
	type ranked struct {
		v graph.VertexID
		r float64
	}
	var rs []ranked
	for v, r := range pr.Ranks {
		rs = append(rs, ranked{graph.VertexID(v), r})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].r > rs[j].r })
	fmt.Println("top-5 influencers (PageRank):")
	for _, x := range rs[:5] {
		fmt.Printf("  user %-5d rank %.5f degree %d\n", x.v, x.r, g.Degree(x.v))
	}
	report("PageRank", pr.Stats)

	// 2. Communities: connected components via Shiloach-Vishkin.
	cc, err := vc.SVCC(g, cfg)
	if err != nil {
		panic(err)
	}
	comps := map[graph.VertexID]int{}
	for _, c := range cc.Color {
		comps[c]++
	}
	fmt.Printf("connected components: %d (largest %d users)\n", len(comps), maxVal(comps))
	report("S-V components", cc.Stats)

	// 3. Moderation shifts: color the graph so that no two adjacent
	// users share a slot (Luby MIS coloring).
	col, err := vc.ColoringMIS(g, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("conflict-free slot assignment uses %d colors\n", col.K)
	report("Luby coloring", col.Stats)

	// 4. Buddy matching: pair users along the heaviest "affinity" edges.
	graph.RandomWeights(g, 99)
	mm, err := vc.MaxWeightMatching(g, cfg)
	if err != nil {
		panic(err)
	}
	pairs := 0
	for v, m := range mm.Match {
		if m != graph.NoVertex && graph.VertexID(v) < m {
			pairs++
		}
	}
	fmt.Printf("buddy matching: %d pairs, total affinity %.0f\n", pairs, mm.Weight)
	report("matching", mm.Stats)
}

func report(name string, st *bsp.Stats) {
	fmt.Printf("  [%s] supersteps=%d messages=%d PT=%.0f recv/deg=%.1f\n\n",
		name, st.NumSupersteps(), st.TotalMessages, st.MeasuredTPP(), st.MaxRecvPerDeg)
}

func maxVal(m map[graph.VertexID]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
