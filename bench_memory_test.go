// Memory-lean substrate benchmark: resident edge-array bytes and
// traversal cost of the varint-delta packed CSR against the flat int32
// one, on the R-MAT power-law graph where delta compression pays most
// (the recursive quadrant skew clusters neighbor IDs, so sorted deltas
// are small — uniform-target generators like PreferentialAttachment
// average gap n/degree and land in the 2-byte varint band, ~1.85x;
// R-MAT's locality pushes past the 2x headline). `make
// bench-memory` runs this file; BENCH_memory.json records the numbers
// and declares the edges-per-GB headline (packed holds ≥2x the edges of
// flat in the same budget) plus a conservative floor on the PageRank
// slowdown the block decode is allowed to cost (cmd/benchguard enforces
// both).
//
// The B/op of BenchmarkMemoryCSRBytes is overridden with the snapshot's
// retained EdgeBytes (offsets + destinations + transpose if built) —
// the deterministic numerator of edges-per-GB — so the benchguard
// bytes_op ratio compares resident footprint, not build-time churn.
package vcgraph

import (
	"fmt"
	"testing"

	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

func benchMemGraph(enc graph.EdgeEncoding) *graph.Graph {
	g := graph.RMAT(15, 400000, 5)
	g.Encoding = enc
	return g
}

func benchMemEncodings() []struct {
	name string
	enc  graph.EdgeEncoding
} {
	return []struct {
		name string
		enc  graph.EdgeEncoding
	}{
		{"int32", graph.EncodeInt32},
		{"packed", graph.EncodePacked},
	}
}

// BenchmarkMemoryCSRBytes measures snapshot build time (ns/op) and
// resident edge bytes (B/op, via ReportMetric) per representation.
func BenchmarkMemoryCSRBytes(b *testing.B) {
	for _, e := range benchMemEncodings() {
		b.Run(e.name, func(b *testing.B) {
			g := benchMemGraph(e.enc)
			var bytes int
			for i := 0; i < b.N; i++ {
				g.Invalidate() // force a fresh snapshot build each iteration
				c := g.Pin()
				bytes = c.EdgeBytes()
				g.Unpin(c)
			}
			b.ReportMetric(float64(bytes), "B/op")
			b.ReportMetric(0, "allocs/op")
			edges := float64(g.M())
			b.ReportMetric(edges/(float64(bytes)/1e9)/1e6, "Medges/GB")
		})
	}
}

// BenchmarkMemoryPageRank measures the traversal cost the compressed
// representation pays: fixed-K PageRank through the pregel engine whose
// per-worker scratch decodes each block once per span visit.
func BenchmarkMemoryPageRank(b *testing.B) {
	for _, e := range benchMemEncodings() {
		b.Run(e.name, func(b *testing.B) {
			g := benchMemGraph(e.enc)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vc.PageRank(g, 0.85, 10, vc.Config{Workers: 8}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMemoryHashMin is the second traversal datapoint: Hash-Min CC
// (with bit-packed labels on the packed representation) — the
// small-domain algorithm the state stores target.
func BenchmarkMemoryHashMin(b *testing.B) {
	for _, e := range benchMemEncodings() {
		packedState := e.enc == graph.EncodePacked
		b.Run(fmt.Sprintf("%s/packedstate-%v", e.name, packedState), func(b *testing.B) {
			g := benchMemGraph(e.enc)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vc.HashMinCC(g, vc.Config{Workers: 8, PackedState: packedState}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
