// Engine-matrix microbenchmark: the two headline workloads (PageRank,
// SSSP) through all four engines at 1 and 4 workers, on the same seeded
// power-law graph. BENCH_engines.json records before/after numbers for
// engine-substrate changes; the async engine is sequential by design
// and contributes a single workers-1 row per workload.
package vcgraph

import (
	"fmt"
	"testing"

	"vcgraph/internal/async"
	"vcgraph/internal/blockcentric"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

const (
	benchMatrixAlpha = 0.85
	benchMatrixEps   = 1e-6
	benchMatrixK     = 20
)

func benchMatrixGraph() *graph.Graph {
	g := graph.PreferentialAttachment(8000, 4, 5)
	graph.RandomWeights(g, 11)
	return g
}

func BenchmarkEngineMatrixPageRank(b *testing.B) {
	g := benchMatrixGraph()
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("pregel/workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vc.PageRank(g, benchMatrixAlpha, benchMatrixK, vc.Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("gas/workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := gas.PageRank(g, benchMatrixAlpha, benchMatrixEps, gas.Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("blockcentric/blocks-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := blockcentric.PageRank(g, benchMatrixAlpha, benchMatrixK, blockcentric.Config{Blocks: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("async/workers-1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := async.PageRank(g, benchMatrixAlpha, benchMatrixEps, async.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEngineMatrixSSSP(b *testing.B) {
	g := benchMatrixGraph()
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("pregel/workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vc.SSSP(g, 0, vc.Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("gas/workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := gas.SSSP(g, 0, gas.Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("blockcentric/blocks-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := blockcentric.SSSP(g, 0, blockcentric.Config{Blocks: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("async/workers-1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := async.SSSP(g, 0, async.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
